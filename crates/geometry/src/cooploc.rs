//! Cooperative point location (Section 3.1, Figure 6, Theorem 4).
//!
//! The raw branch function of the separator tree violates the consistency
//! assumption (Figure 5: a node left of the search path can return *left*),
//! so the basic implicit search of Section 2.3 does not apply. The paper's
//! fix is a per-hop **recomputed branch function**: the search maintains
//! indices `(L, R)` with the invariant "the query lies between separators
//! `σ_L` and `σ_R`, and everything processed so far is consistent with
//! that". Each hop over a unit `U` runs six steps:
//!
//! 1. locate `y` in every unit node's catalog (skeleton windows);
//! 2. discriminate `q` geometrically at every *active* node;
//! 3. find the unique pair of active nodes `(σ_i, σ_j)` with `q` between
//!    their edges and no active edge between them (realised as the R→L
//!    transition of the geometric branches, which the monotone separator
//!    order makes unique — equivalent to the paper's
//!    `min(e_j) − max(e_i) <= 2^h` same-region test, see DESIGN.md);
//! 4. set `L := i`, `R := j`;
//! 5. give every *inactive* node `σ_k` the branch `right` if
//!    `k <= max(e_L(q))`, else `left` (correct because every inactive
//!    separator between the new `L` and `R` must share one of their edges);
//! 6. read the search path off the unique inorder R→L transition.

use crate::septree::{Activity, NodeKind, SeparatorTree};
use fc_catalog::key::OrdF64;
use fc_coop::implicit::Branch;
use fc_coop::skeleton::NO_CHILD;
use fc_pram::cost::Pram;
use fc_pram::primitives::coop_lower_bound_traced;
use fc_pram::shadow::{NoTrace, Tracer};

/// Statistics from one cooperative point location.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoopLocateStats {
    /// Hops performed.
    pub hops: usize,
    /// Nodes found active across all hops.
    pub active_nodes: usize,
    /// Window-coverage fallbacks (0 with the guaranteed fan-out bound).
    pub fallbacks: usize,
    /// Tree levels handled by the sequential tail.
    pub tail_nodes: usize,
    /// Final `(L, R)` window (1-indexed separators; 0 and f are the
    /// fictitious boundaries).
    pub window: (u32, u32),
}

/// Alias kept for the public API: the cooperative locator is the
/// preprocessed [`SeparatorTree`]; this type carries its query statistics.
pub type CoopLocator = CoopLocateStats;

/// Locate `(x, y)` cooperatively with the processor count carried by
/// `pram`. Returns the 1-indexed region and the hop statistics.
pub fn locate_coop(t: &SeparatorTree, x: f64, y: f64, pram: &mut Pram) -> (usize, CoopLocateStats) {
    locate_coop_traced(t, x, y, pram, &mut NoTrace)
}

/// [`locate_coop`] with every logical access reported to a [`Tracer`] on
/// the CREW round structure of Section 3.1 (Figure 6):
///
/// * `loc/root` — traced cooperative root search (shared query-cell reads);
/// * `loc/select` — skeleton-tree selection, `min(s, t)` processors sharing
///   the hop cursor;
/// * `loc/windows` — one processor per candidate window position at every
///   unit node, unique winners publishing `find(y, ·)` to `("loc-g", 0)`;
/// * `loc/discriminate` — one processor per unit node geometrically
///   discriminating the query point (shared `("query-pt", 0)` read);
/// * `loc/pairs` — one processor per pair of *active* nodes locating the
///   unique `(σ_L, σ_R)` transition, the winners publishing the window and
///   `max(e_L)`;
/// * `loc/branch` — one processor per unit node recomputing its consistent
///   branch (shared `("loc-maxel", 0)` read);
/// * `loc/descend` — reading the path off the inorder transition (≤ 2
///   readers per branch cell), the landing winner advancing the cursor;
/// * `loc/tail` — single-processor strip-branch bridge walking.
///
/// Every write is exclusive — the paper's CREW claim for point location
/// (Theorem 4). Results and `pram` charges are bit-identical to
/// [`locate_coop`].
pub fn locate_coop_traced<Tr: Tracer>(
    t: &SeparatorTree,
    x: f64,
    y: f64,
    pram: &mut Pram,
    tr: &mut Tr,
) -> (usize, CoopLocateStats) {
    let p = pram.processors();
    let Some(sub) = t.st.select(p) else {
        let (r, s) = crate::septree::locate_sequential(t, x, y, Some(pram));
        if tr.live() {
            // Single-processor fallback: one exclusive round standing in
            // for the whole sequential walk (trivially conflict-free).
            tr.phase("loc/seq");
            tr.read(0, ("query-pt", 0), 0);
            tr.write(0, ("res", 0), 0);
            tr.barrier();
        }
        return (
            r,
            CoopLocateStats {
                tail_nodes: s.active_nodes + s.inactive_nodes,
                ..CoopLocateStats::default()
            },
        );
    };

    let y = t.clamp_y(y);
    let key = OrdF64::new(y);
    let fc = t.st.cascade();
    let tree = t.st.tree();
    let slot_span = tree.max_degree() + 1;
    let f = t.sub.f as u32;
    let mut stats = CoopLocateStats {
        window: (0, f),
        ..CoopLocateStats::default()
    };

    // Fictitious boundary state: σ_L with max(e_L); σ_0 is at -∞ and
    // max(e_0) = 0, so every branch starts out `left`.
    let mut max_el = 0u32;

    let mut node = tree.root();
    tr.phase("loc/root");
    let mut aug = coop_lower_bound_traced(
        fc.keys(node),
        &key,
        pram,
        tr,
        ("aug", node.idx()),
        ("query", 0),
    );
    if tr.live() {
        // Hand the located position to the hop machinery.
        tr.read(0, ("clb-cursor", node.idx()), 0);
        tr.write(0, ("cursor", 0), 0);
        tr.barrier();
    }

    // Hops.
    while let NodeKind::Separator(_) = t.kind[node.idx()] {
        let Some(unit) = t.st.select(p).and_then(|s| s.unit_at(node)) else {
            break;
        };
        debug_assert_eq!(sub.sp.h, t.st.select(p).unwrap().sp.h);
        if unit.nodes.len() == 1 {
            break;
        }
        stats.hops += 1;

        // Skeleton tree selection (Step 2 of the explicit search).
        let tcat = fc.keys(node).len();
        let j = (aug / sub.sp.s).min(unit.m as usize - 1);
        let k_sel = sub.sp.s.min(tcat);
        if tr.live() {
            tr.phase("loc/select");
            for i in 0..k_sel {
                tr.read(i, ("cursor", 0), 0);
                tr.read(i, ("aug", node.idx()), (aug + i).min(tcat - 1));
            }
            let sel_cell = (j * sub.sp.s).min(tcat - 1);
            let winner = sel_cell.saturating_sub(aug).min(k_sel - 1);
            tr.write(winner, ("sel", 0), 0);
            tr.barrier();
        }
        pram.round(k_sel);

        // Hop step 1: find(y, ·) at every unit node via its window.
        let zn = unit.nodes.len();
        #[allow(clippy::needless_range_loop)] // one virtual processor per unit node
        let mut g = vec![0usize; zn];
        g[0] = aug;
        let mut ops = 0usize;
        if tr.live() {
            // Processor 0 carries the root position over; one processor per
            // candidate handles every other unit node's window.
            tr.phase("loc/windows");
            tr.read(0, ("cursor", 0), 0);
            tr.write(0, ("loc-g", 0), 0);
        }
        let mut pid_base = 1usize;
        for z in 1..zn {
            let w = unit.nodes[z];
            let l = unit.level_of[z] as u32;
            let k = unit.key(j, z) as usize;
            let (q_w, r_w) = t.st.params().window(&sub.sp, l);
            let len = fc.keys(w).len();
            let lo = k.saturating_sub(q_w + r_w);
            let hi = (k + q_w).min(len - 1);
            ops += hi - lo + 1;
            let gz = fc.find_aug(w, key);
            if tr.live() {
                // Shared reads of the query/selection/skeleton-key cells,
                // ≤ 2 readers per catalog cell, unique winner per window.
                let skel = ("skel", unit.root.idx());
                for (off, c) in (lo..=hi).enumerate() {
                    let pid = pid_base + off;
                    tr.read(pid, ("query", 0), 0);
                    tr.read(pid, ("sel", 0), 0);
                    tr.read(pid, skel, j * zn + z);
                    tr.read(pid, ("aug", w.idx()), c);
                    if c > 0 {
                        tr.read(pid, ("aug", w.idx()), c - 1);
                    }
                }
                if (lo..=hi).contains(&gz) {
                    tr.write(pid_base + (gz - lo), ("loc-g", 0), z);
                }
                pid_base += hi - lo + 1;
            }
            if gz < lo || gz > hi {
                stats.fallbacks += 1;
                pram.seq((usize::BITS - len.leading_zeros()) as usize);
            }
            g[z] = gz;
        }
        if tr.live() {
            tr.barrier();
        }
        pram.round(ops);

        // Hop step 2: geometric discrimination at active nodes.
        let mut activity: Vec<Option<(u32, crate::septree::EdgeInfo, Branch)>> = vec![None; zn];
        for z in 0..zn {
            let w = unit.nodes[z];
            if let NodeKind::Separator(c) = t.kind[w.idx()] {
                let native = fc.native_result(w, g[z]).native_idx as usize;
                if let Activity::Active(e) = t.classify(w, native, y) {
                    activity[z] = Some((c, e, t.discriminate(c, x, y)));
                }
            }
        }
        stats.active_nodes += activity.iter().flatten().count();
        if tr.live() {
            // Hop step 2 replay: processor z reads its node's located
            // position and the shared query point, probes its separator's
            // geometry when active, and publishes its activity record.
            tr.phase("loc/discriminate");
            for (z, entry) in activity.iter().enumerate() {
                tr.read(z, ("loc-g", 0), z);
                tr.read(z, ("query-pt", 0), 0);
                if entry.is_some() {
                    tr.read(z, ("geom", unit.nodes[z].idx()), 0);
                }
                tr.write(z, ("loc-act", 0), z);
            }
            tr.barrier();
        }
        pram.round(zn);

        // Hop steps 3-4: the unique active pair around q (the paper
        // allocates processors to all pairs of U ∪ {σ_L, σ_R}).
        pram.round(zn * zn);
        let mut best_right: Option<(u32, u32)> = None; // (c, run_hi) of last right-branching active
        let mut first_left: Option<u32> = None;
        let mut right_z: Option<usize> = None;
        let mut left_z: Option<usize> = None;
        for (z, entry) in activity.iter().enumerate() {
            let Some((c, e, b)) = *entry else { continue };
            match b {
                Branch::Right => {
                    if best_right.is_none_or(|(bc, _)| c > bc) {
                        best_right = Some((c, e.run_hi));
                        right_z = Some(z);
                    }
                }
                Branch::Left => {
                    if first_left.is_none_or(|fc_| c < fc_) {
                        first_left = Some(c);
                        left_z = Some(z);
                    }
                }
            }
        }
        if tr.live() {
            // Hop steps 3-4 replay over the *active* set: one processor per
            // ordered pair reads both activity records (shared reads, CREW);
            // the transition winners publish the window and max(e_L).
            tr.phase("loc/pairs");
            let act_zs: Vec<usize> = (0..zn).filter(|&z| activity[z].is_some()).collect();
            let na = act_zs.len();
            for (ai, &za) in act_zs.iter().enumerate() {
                for (bi, &zb) in act_zs.iter().enumerate() {
                    let pid = ai * na + bi;
                    tr.read(pid, ("loc-act", 0), za);
                    if zb != za {
                        tr.read(pid, ("loc-act", 0), zb);
                    }
                }
            }
            if let Some(zr) = right_z {
                if let Some(pos) = act_zs.iter().position(|&z| z == zr) {
                    tr.write(pos * na + pos, ("loc-win", 0), 0);
                    tr.write(pos * na + pos, ("loc-maxel", 0), 0);
                }
            }
            if let Some(zl) = left_z {
                if let Some(pos) = act_zs.iter().position(|&z| z == zl) {
                    tr.write(pos * na + pos, ("loc-win", 0), 1);
                }
            }
            tr.barrier();
        }
        if let Some((c, hi)) = best_right {
            stats.window.0 = c;
            max_el = hi;
        }
        if let Some(c) = first_left {
            stats.window.1 = c;
        }
        debug_assert!(stats.window.0 <= stats.window.1);

        // Hop step 5: consistent branches everywhere.
        let branches: Vec<Branch> = (0..zn)
            .map(|z| {
                if let Some((_, _, b)) = activity[z] {
                    return b;
                }
                match t.kind[unit.nodes[z].idx()] {
                    NodeKind::Separator(c) => {
                        if c <= max_el {
                            Branch::Right
                        } else {
                            Branch::Left
                        }
                    }
                    NodeKind::Region(r) => {
                        if r <= max_el {
                            Branch::Right
                        } else {
                            Branch::Left
                        }
                    }
                }
            })
            .collect();
        if tr.live() {
            // Hop step 5 replay: processor z recomputes its node's branch
            // from its activity record and the shared max(e_L) cell.
            tr.phase("loc/branch");
            for z in 0..zn {
                tr.read(z, ("loc-act", 0), z);
                tr.read(z, ("loc-maxel", 0), 0);
                tr.write(z, ("loc-branch", 0), z);
            }
            tr.barrier();
        }
        pram.round(zn);
        debug_assert!(
            {
                let mut seen_left = false;
                let mut ok = true;
                for &z in &unit.inorder {
                    match branches[z as usize] {
                        Branch::Left => seen_left = true,
                        Branch::Right => ok &= !seen_left,
                    }
                }
                ok
            },
            "recomputed branch function must satisfy the consistency assumption"
        );

        // Hop step 6: follow the branches to the unit bottom (the PRAM
        // reads this off the inorder transition in O(1)).
        pram.round(zn);
        let mut z = 0usize;
        loop {
            let b = branches[z];
            let cpos = unit.children_pos[z][b.slot()];
            if cpos == NO_CHILD {
                break;
            }
            z = cpos as usize;
            node = unit.nodes[z];
            aug = g[z];
        }
        if tr.live() {
            // Hop step 6 replay: processor i reads the branches at inorder
            // positions i and i+1 (≤ 2 readers per branch cell); the unique
            // R→L transition owner lands the search, advancing the cursor.
            tr.phase("loc/descend");
            for i in 0..zn {
                tr.read(i, ("loc-branch", 0), unit.inorder[i] as usize);
                if let Some(&nxt) = unit.inorder.get(i + 1) {
                    tr.read(i, ("loc-branch", 0), nxt as usize);
                }
            }
            if z != 0 {
                if let Some(wpos) = unit.inorder.iter().position(|&u| u as usize == z) {
                    tr.read(wpos, ("loc-g", 0), z);
                    tr.write(wpos, ("cursor", 0), 0);
                    tr.write(wpos, ("loc-node", 0), 0);
                }
            }
            tr.barrier();
        }
        pram.seq(1);
        if z == 0 {
            break;
        }
    }

    // Sequential tail using the per-strip gap branches.
    loop {
        match t.kind[node.idx()] {
            NodeKind::Region(r) => return (r as usize, stats),
            NodeKind::Separator(c) => {
                stats.tail_nodes += 1;
                let native = fc.native_result(node, aug).native_idx as usize;
                let act = t.classify(node, native, y);
                let branch = match act {
                    Activity::Active(_) => t.discriminate(c, x, y),
                    Activity::Inactive => t.strip_branch[node.idx()][t.sub.strip_of(y)],
                };
                let slot = branch.slot();
                let (next, walked) = fc.descend(node, slot, aug, key);
                if tr.live() {
                    // Single-processor bridge step: geometry or strip-table
                    // probe, bridge crossing, landing walk — all exclusive.
                    tr.phase("loc/tail");
                    tr.read(0, ("query-pt", 0), 0);
                    tr.read(0, ("aug", node.idx()), aug);
                    match act {
                        Activity::Active(_) => tr.read(0, ("geom", node.idx()), 0),
                        Activity::Inactive => tr.read(0, ("strip", node.idx()), t.sub.strip_of(y)),
                    }
                    tr.read(0, ("bridge", node.idx() * slot_span + slot), aug);
                    let wchild = tree.children(node)[slot];
                    for b in 0..=walked {
                        tr.read(0, ("aug", wchild.idx()), next + b);
                    }
                    tr.write(0, ("res", 0), stats.tail_nodes);
                    tr.write(0, ("cursor", 0), 0);
                    tr.barrier();
                }
                pram.seq(2 + walked);
                node = tree.children(node)[slot];
                aug = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subdivision::{MonotoneSubdivision, SubdivisionParams};
    use fc_coop::ParamMode;
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn build(seed: u64, params: SubdivisionParams) -> SeparatorTree {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sub = MonotoneSubdivision::generate(params, &mut rng);
        SeparatorTree::build(sub, ParamMode::Auto)
    }

    fn check(t: &SeparatorTree, p: usize, queries: usize, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..queries {
            let (x, y) = t.sub.random_query(&mut rng);
            let want = t.sub.locate_brute(x, y);
            let mut pram = Pram::new(p, Model::Crew);
            let (got, stats) = locate_coop(t, x, y, &mut pram);
            assert_eq!(got, want, "p {p} q ({x}, {y}) stats {stats:?}");
        }
    }

    #[test]
    fn coop_matches_brute_force_across_p() {
        let t = build(
            101,
            SubdivisionParams {
                regions: 128,
                strips: 24,
                stick: 0.4,
                detach: 0.4,
            },
        );
        for p in [1usize, 8, 256, 1 << 14, 1 << 22] {
            check(&t, p, 150, 200 + p as u64);
        }
    }

    #[test]
    fn coop_matches_on_heavy_sharing() {
        let t = build(
            103,
            SubdivisionParams {
                regions: 256,
                strips: 16,
                stick: 0.8,
                detach: 0.1,
            },
        );
        for p in [1usize, 1 << 12, 1 << 20] {
            check(&t, p, 120, 300 + p as u64);
        }
    }

    #[test]
    fn coop_matches_with_no_sharing() {
        let t = build(
            107,
            SubdivisionParams {
                regions: 64,
                strips: 12,
                stick: 0.0,
                detach: 1.0,
            },
        );
        for p in [1usize, 1 << 16] {
            check(&t, p, 120, 400 + p as u64);
        }
    }

    #[test]
    fn no_fallbacks_with_guaranteed_b() {
        let t = build(
            109,
            SubdivisionParams {
                regions: 512,
                strips: 32,
                stick: 0.4,
                detach: 0.4,
            },
        );
        let mut rng = SmallRng::seed_from_u64(110);
        for _ in 0..80 {
            let (x, y) = t.sub.random_query(&mut rng);
            let mut pram = Pram::new(1 << 18, Model::Crew);
            let (_, stats) = locate_coop(&t, x, y, &mut pram);
            assert_eq!(stats.fallbacks, 0);
        }
    }

    #[test]
    fn window_narrows_around_the_answer() {
        let t = build(
            113,
            SubdivisionParams {
                regions: 256,
                strips: 24,
                stick: 0.3,
                detach: 0.5,
            },
        );
        let mut rng = SmallRng::seed_from_u64(114);
        for _ in 0..50 {
            let (x, y) = t.sub.random_query(&mut rng);
            let mut pram = Pram::new(1 << 20, Model::Crew);
            let (region, stats) = locate_coop(&t, x, y, &mut pram);
            let (l, r) = stats.window;
            assert!(
                (l as usize) < region || l == 0,
                "L = {l} must be left of region {region}"
            );
            assert!(
                (r as usize) >= region || r == t.sub.f as u32,
                "R = {r} must be right of region {region}"
            );
        }
    }

    #[test]
    fn large_p_reduces_steps_vs_sequential() {
        let t = build(
            127,
            SubdivisionParams {
                regions: 4096,
                strips: 48,
                stick: 0.35,
                detach: 0.45,
            },
        );
        let mut rng = SmallRng::seed_from_u64(128);
        let mut seq_steps = 0u64;
        let mut coop_steps = 0u64;
        for _ in 0..40 {
            let (x, y) = t.sub.random_query(&mut rng);
            let mut p1 = Pram::new(1, Model::Crew);
            crate::septree::locate_sequential(&t, x, y, Some(&mut p1));
            seq_steps += p1.steps();
            let mut pp = Pram::new(1 << 30, Model::Crew);
            locate_coop(&t, x, y, &mut pp);
            coop_steps += pp.steps();
        }
        assert!(
            coop_steps < seq_steps,
            "coop {coop_steps} vs sequential {seq_steps}"
        );
    }

    #[test]
    fn boundary_and_vertex_queries_coop() {
        let t = build(131, SubdivisionParams::default());
        for j in 0..t.sub.ys.len() {
            for i in 0..t.sub.separators() {
                let (x, y) = (t.sub.xs[i][j], t.sub.ys[j]);
                let want = t.sub.locate_brute(x, y);
                let mut pram = Pram::new(1 << 14, Model::Crew);
                let (got, _) = locate_coop(&t, x, y, &mut pram);
                assert_eq!(got, want, "vertex ({x}, {y})");
            }
        }
    }

    #[test]
    fn traced_locate_matches_untraced_and_is_crew_clean() {
        use fc_pram::ShadowMem;
        let t = build(
            211,
            SubdivisionParams {
                regions: 256,
                strips: 24,
                stick: 0.4,
                detach: 0.4,
            },
        );
        let mut rng = SmallRng::seed_from_u64(212);
        for p in [1usize, 256, 1 << 14, 1 << 20] {
            for _ in 0..25 {
                let (x, y) = t.sub.random_query(&mut rng);
                let mut pram = Pram::new(p, Model::Crew);
                let (plain_r, plain_s) = locate_coop(&t, x, y, &mut pram);
                let mut pram_t = Pram::new(p, Model::Crew);
                let mut shadow = ShadowMem::new(Model::Crew);
                let (traced_r, traced_s) = locate_coop_traced(&t, x, y, &mut pram_t, &mut shadow);
                assert_eq!(traced_r, plain_r, "p {p} q ({x}, {y})");
                assert_eq!(traced_s, plain_s, "p {p} q ({x}, {y})");
                assert_eq!(pram_t.steps(), pram.steps(), "replay must not change cost");
                assert_eq!(pram_t.rounds(), pram.rounds());
                assert!(
                    shadow.finish(),
                    "CREW violation at p {p} q ({x}, {y}): {:?}",
                    shadow.violations().first()
                );
            }
        }
    }

    #[test]
    fn traced_locate_violates_erew_when_cooperative() {
        use fc_pram::ShadowMem;
        let t = build(
            223,
            SubdivisionParams {
                regions: 4096,
                strips: 48,
                stick: 0.35,
                detach: 0.45,
            },
        );
        let mut rng = SmallRng::seed_from_u64(224);
        let mut saw_violation = false;
        for _ in 0..10 {
            let (x, y) = t.sub.random_query(&mut rng);
            let mut pram = Pram::new(1 << 22, Model::Crew);
            let mut shadow = ShadowMem::new(Model::Erew);
            let (_, stats) = locate_coop_traced(&t, x, y, &mut pram, &mut shadow);
            if stats.hops > 0 && !shadow.finish() {
                let v = &shadow.violations()[0];
                assert!(v.phase.starts_with("loc/"), "blame phase {}", v.phase);
                saw_violation = true;
                break;
            }
        }
        assert!(
            saw_violation,
            "cooperative location must trip EREW checking"
        );
    }

    #[test]
    fn per_gap_rule_is_ambiguous_on_some_instances() {
        // REPRODUCTION FINDING (see DESIGN.md / EXPERIMENTS.md): the paper
        // stores one branch per *gap* and claims it depends only on the
        // gap. On generated monotone subdivisions a separator can hug its
        // left neighbour in one strip and its right neighbour in the next
        // with no proper edge in between — one gap, owners on both sides,
        // so a single stored direction would mispredict for part of the
        // gap. We therefore store the branch per strip (same O(n) space);
        // this test documents that the ambiguity genuinely occurs while
        // the locator stays correct (brute-force agreement is asserted in
        // the other tests on the same generator).
        let mut total_ambiguous = 0usize;
        for seed in [137u64, 139, 149] {
            let t = build(
                seed,
                SubdivisionParams {
                    regions: 64,
                    strips: 20,
                    stick: 0.6,
                    detach: 0.3,
                },
            );
            let tree = t.st.tree();
            let mut disagreements = 0usize;
            for nid in tree.ids() {
                if t.sep_of(nid).is_none() {
                    continue;
                }
                // Gaps = maximal runs of non-proper strips.
                let proper: std::collections::HashSet<u32> =
                    t.edges[nid.idx()].iter().map(|e| e.strip).collect();
                let sb = &t.strip_branch[nid.idx()];
                let mut gap: Vec<Branch> = Vec::new();
                for j in 0..t.sub.strips() as u32 {
                    if proper.contains(&j) {
                        if gap.windows(2).any(|w| w[0] != w[1]) {
                            disagreements += 1;
                        }
                        gap.clear();
                    } else {
                        gap.push(sb[j as usize]);
                    }
                }
                if gap.windows(2).any(|w| w[0] != w[1]) {
                    disagreements += 1;
                }
            }
            // Correctness despite ambiguity: sequential matches brute force
            // on this very instance.
            let mut rng = SmallRng::seed_from_u64(seed + 7);
            for _ in 0..100 {
                let (x, y) = t.sub.random_query(&mut rng);
                let (got, _) = crate::septree::locate_sequential(&t, x, y, None);
                assert_eq!(got, t.sub.locate_brute(x, y));
            }
            total_ambiguous += disagreements;
        }
        assert!(
            total_ambiguous > 0,
            "expected the generator to exhibit the mixed-owner gap edge case"
        );
    }
}
