//! Repo automation tasks, built on the `fc-lint` static-analysis library.
//!
//! ```text
//! cargo run -p xtask -- lint                  # fast legacy gate: hot-path-strict + traced-cells
//! cargo run -p xtask -- lint --all            # every rule + suppressions + committed baseline
//! cargo run -p xtask -- lint --rule <id>...   # specific rules (see --list)
//! cargo run -p xtask -- lint --json           # findings as a JSON array on stdout
//! cargo run -p xtask -- lint --update-baseline  # regenerate lint-baseline.txt
//! cargo run -p xtask -- lint --list           # registered rules
//! cargo run -p xtask -- ci                    # full local gate: fmt, clippy, lint --all, tests
//! ```
//!
//! Rules, the suppression grammar (`// fc-lint: allow(<rule>) -- <reason>`),
//! and the baseline workflow are documented in DESIGN.md §13 and in the
//! `fc-lint` crate docs.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("ci") => run_ci(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint, ci)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- <lint|ci> [options]");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root; the fallback keeps this binary
    // panic-free (its own lint applies to it).
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Parsed `lint` options.
#[derive(Debug, Default, PartialEq)]
struct LintArgs {
    all: bool,
    json: bool,
    list: bool,
    update_baseline: bool,
    rules: Vec<String>,
}

fn parse_lint_args(args: &[String]) -> Result<LintArgs, String> {
    let mut out = LintArgs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => out.all = true,
            "--json" => out.json = true,
            "--list" => out.list = true,
            "--update-baseline" => out.update_baseline = true,
            "--rule" => match it.next() {
                Some(r) => out.rules.push(r.clone()),
                None => return Err("--rule needs a rule id (see --list)".into()),
            },
            other => return Err(format!("unknown lint option `{other}`")),
        }
    }
    if out.all && !out.rules.is_empty() {
        return Err("--all and --rule are mutually exclusive".into());
    }
    Ok(out)
}

/// The fast pre-`--all` gate: the zero-tolerance rules PR 2 shipped with.
const LEGACY_RULES: &[&str] = &["hot-path-strict", "traced-cells"];

const BASELINE_FILE: &str = "lint-baseline.txt";

fn run_lint(args: &[String]) -> ExitCode {
    let opts = match parse_lint_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = repo_root();

    if opts.list {
        for rule in fc_lint::rules::all() {
            let baselined = if rule.baselined() { " [baselined]" } else { "" };
            println!("{:18} {}{baselined}", rule.id(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    if opts.update_baseline {
        return update_baseline(&root);
    }

    let rule_ids: Vec<String> = if opts.all {
        Vec::new() // empty selection = every registered rule
    } else if !opts.rules.is_empty() {
        opts.rules.clone()
    } else {
        LEGACY_RULES.iter().map(|s| (*s).to_owned()).collect()
    };

    // Only load the baseline when a selected rule can consume it;
    // otherwise every entry would report stale.
    let selected = match fc_lint::rules::select(&rule_ids) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline_path = root.join(BASELINE_FILE);
    let baseline = selected
        .iter()
        .any(|r| r.baselined())
        .then_some(baseline_path.as_path());

    let report = match fc_lint::run(&root, &rule_ids, baseline) {
        Ok(r) => r,
        Err(errs) => {
            for e in errs {
                eprintln!("xtask lint: {e}");
            }
            return ExitCode::FAILURE;
        }
    };

    if opts.json {
        println!("{}", findings_json(&report.findings));
    } else {
        for f in &report.findings {
            eprintln!("lint: {f}");
        }
        for s in &report.stale_baseline {
            eprintln!(
                "lint: warning: stale baseline entry (fixed or moved — run \
                 `cargo run -p xtask -- lint --update-baseline`): {s}"
            );
        }
    }

    if report.findings.is_empty() {
        if !opts.json {
            println!(
                "xtask lint: OK ({} rule(s): {}; {} suppressed, {} baselined)",
                report.rules_run.len(),
                report.rules_run.join(", "),
                report.suppressed,
                report.grandfathered,
            );
        }
        ExitCode::SUCCESS
    } else {
        if !opts.json {
            eprintln!("xtask lint: {} finding(s)", report.findings.len());
        }
        ExitCode::FAILURE
    }
}

fn update_baseline(root: &Path) -> ExitCode {
    match fc_lint::render_baseline(root) {
        Ok(text) => {
            let path = root.join(BASELINE_FILE);
            let entries = text.lines().filter(|l| !l.starts_with('#')).count();
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("xtask lint: writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("xtask lint: wrote {entries} baseline entr(ies) to {BASELINE_FILE}");
            ExitCode::SUCCESS
        }
        Err(errs) => {
            for e in errs {
                eprintln!("xtask lint: {e}");
            }
            ExitCode::FAILURE
        }
    }
}

fn findings_json(findings: &[fc_lint::Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"content\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.message),
            json_escape(&f.content),
        ));
    }
    out.push(']');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `xtask ci`: the full local gate in CI order, stopping at the first
/// failure so a broken step is the last thing on screen.
fn run_ci() -> ExitCode {
    let root = repo_root();
    let steps: &[(&str, &[&str])] = &[
        ("cargo fmt --check", &["fmt", "--all", "--", "--check"]),
        (
            "cargo clippy -D warnings",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        (
            "xtask lint --all",
            &["run", "-q", "-p", "xtask", "--", "lint", "--all"],
        ),
        ("cargo test", &["test", "-q", "--workspace"]),
    ];
    for (label, args) in steps {
        println!("==> {label}");
        let status = Command::new("cargo")
            .args(*args)
            .current_dir(&root)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("xtask ci: step `{label}` failed ({s})");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("xtask ci: step `{label}` could not run: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("xtask ci: all steps passed");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_args_parse() {
        let a = parse_lint_args(&["--all".into(), "--json".into()]).unwrap();
        assert!(a.all && a.json && a.rules.is_empty());
        let b = parse_lint_args(&["--rule".into(), "commit-order".into()]).unwrap();
        assert_eq!(b.rules, vec!["commit-order".to_owned()]);
        assert!(parse_lint_args(&["--rule".into()]).is_err());
        assert!(parse_lint_args(&["--bogus".into()]).is_err());
        assert!(parse_lint_args(&["--all".into(), "--rule".into(), "x".into()]).is_err());
    }

    #[test]
    fn json_is_escaped() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let f = fc_lint::Finding {
            rule: "panic-free",
            file: "crates/a.rs".into(),
            line: 3,
            message: "say \"no\"".into(),
            content: "x.unwrap()".into(),
        };
        let j = findings_json(std::slice::from_ref(&f));
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"no\\\""));
    }
}
