//! Repo automation tasks. `cargo run -p xtask -- lint` runs the source-level
//! lint pass CI enforces on top of clippy:
//!
//! **Rule A — panic-free, bounds-blamed hot paths.** The corruption-checking
//! paths (`checked_descend` in `fc-catalog`, `audit_locate` in `fc-coop`, the
//! whole non-test portion of `fc-resilience`'s `audit.rs`/`repair.rs`, of
//! `fc-serve`'s `worker.rs`, of `fc-shard`'s `partition.rs`/`router.rs`, and
//! of `fc-store`'s `snapshot.rs`/`wal.rs`/`recover.rs`/`manifest.rs` — the
//! replay/recovery paths that must refuse corrupt bytes with a typed
//! `StoreError`, never a panic)
//! must stay free of `.unwrap()`, `.expect()`, panicking macros, and direct
//! slice indexing: a corrupt structure must surface as a blamed `FcError` /
//! `Blame` finding, never as a panic. Direct indexing is detected lexically —
//! a `[` immediately following an identifier, `)`, or `]` — after stripping
//! comments and string literals, so array-type syntax (`[u32; 4]`), slice
//! types (`&[K]`), and attributes (`#[...]`) do not trip it.
//!
//! **Rule B — no untraced shadow-buffer escapes.** Outside `crates/pram`, no
//! code may index a traced memory's raw `.cells` buffer (`.cells[...]`); all
//! access must go through the traced `read`/`write` API so the discipline
//! analyzer sees it. The accessor method `.cells()` stays legal.
//!
//! The pass exits nonzero with `file:line` diagnostics on any finding.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (available: lint)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // crates/xtask -> crates -> repo root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives two levels under the repo root")
        .to_path_buf()
}

fn run_lint() -> ExitCode {
    let root = repo_root();
    let mut findings: Vec<String> = Vec::new();

    // Rule A: scoped panic-free / index-free regions.
    let scopes: &[(&str, Scope)] = &[
        (
            "crates/catalog/src/cascade.rs",
            Scope::Fn("checked_descend"),
        ),
        ("crates/core/src/explicit.rs", Scope::Fn("audit_locate")),
        ("crates/resilience/src/audit.rs", Scope::UntilTests),
        ("crates/resilience/src/repair.rs", Scope::UntilTests),
        ("crates/serve/src/worker.rs", Scope::UntilTests),
        ("crates/shard/src/partition.rs", Scope::UntilTests),
        ("crates/shard/src/router.rs", Scope::UntilTests),
        ("crates/store/src/snapshot.rs", Scope::UntilTests),
        ("crates/store/src/wal.rs", Scope::UntilTests),
        ("crates/store/src/recover.rs", Scope::UntilTests),
        ("crates/store/src/manifest.rs", Scope::UntilTests),
    ];
    for &(rel, scope) in scopes {
        let path = root.join(rel);
        match fs::read_to_string(&path) {
            Ok(src) => lint_scoped(rel, &src, scope, &mut findings),
            Err(e) => findings.push(format!("{rel}: unreadable ({e})")),
        }
    }

    // Rule B: `.cells[` escapes outside crates/pram.
    let crates_dir = root.join("crates");
    let mut rs_files = Vec::new();
    collect_rs(&crates_dir, &mut rs_files);
    for path in rs_files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if rel.starts_with("crates/pram/") || rel.starts_with("crates/xtask/") {
            continue;
        }
        let Ok(src) = fs::read_to_string(&path) else {
            findings.push(format!("{rel}: unreadable"));
            continue;
        };
        let mut in_block = false;
        for (i, raw) in src.lines().enumerate() {
            let line = strip_noncode(raw, &mut in_block);
            if line.contains(".cells[") {
                findings.push(format!(
                    "{rel}:{}: raw `.cells[...]` access outside crates/pram — \
                     use the traced read/write API",
                    i + 1
                ));
            }
        }
    }

    if findings.is_empty() {
        println!(
            "xtask lint: OK ({} scoped regions, rule B sweep clean)",
            scopes.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("lint: {f}");
        }
        eprintln!("xtask lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

/// What part of a file Rule A applies to.
#[derive(Clone, Copy)]
enum Scope {
    /// The brace-matched body of the named `fn`.
    Fn(&'static str),
    /// Everything from the top of the file to the first `#[cfg(test)]`.
    UntilTests,
}

fn lint_scoped(rel: &str, src: &str, scope: Scope, findings: &mut Vec<String>) {
    let lines: Vec<&str> = src.lines().collect();
    let (start, end) = match scope {
        Scope::Fn(name) => match fn_body_range(&lines, name) {
            Some(r) => r,
            None => {
                findings.push(format!("{rel}: scoped `fn {name}` not found"));
                return;
            }
        },
        Scope::UntilTests => {
            let end = lines
                .iter()
                .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
                .unwrap_or(lines.len());
            (0, end)
        }
    };

    const BANNED: &[&str] = &[
        ".unwrap(",
        ".expect(",
        "panic!(",
        "unreachable!(",
        "todo!(",
        "unimplemented!(",
    ];
    let mut in_block = false;
    for (i, raw) in lines.iter().enumerate().take(end).skip(start) {
        let line = strip_noncode(raw, &mut in_block);
        for pat in BANNED {
            if line.contains(pat) {
                findings.push(format!(
                    "{rel}:{}: `{}` in a panic-free region — return a blamed error instead",
                    i + 1,
                    pat.trim_end_matches('(')
                ));
            }
        }
        if let Some(col) = find_direct_index(&line) {
            findings.push(format!(
                "{rel}:{}:{}: direct slice indexing in a bounds-blamed region — \
                 use `.get(..)` and blame the entry",
                i + 1,
                col + 1
            ));
        }
    }
}

/// Locate the brace-matched body of `fn <name>` as a `(start, end)` line
/// range (end exclusive), including the signature line.
fn fn_body_range(lines: &[&str], name: &str) -> Option<(usize, usize)> {
    let needle = format!("fn {name}");
    let start = lines.iter().position(|l| {
        l.contains(&needle)
            && l.as_bytes()
                .get(l.find(&needle).unwrap_or(0) + needle.len())
                .is_none_or(|&b| !b.is_ascii_alphanumeric() && b != b'_')
    })?;
    let mut depth = 0i32;
    let mut opened = false;
    let mut in_block = false;
    for (i, raw) in lines.iter().enumerate().skip(start) {
        let line = strip_noncode(raw, &mut in_block);
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth == 0 {
            return Some((start, i + 1));
        }
    }
    None
}

/// Replace comments and string/char-literal contents with spaces so the
/// lexical checks only see code. Tracks `/* ... */` across lines via
/// `in_block`. Escape-aware for `\"` inside strings; raw strings with `#`
/// guards are treated as plain strings (good enough for this codebase).
fn strip_noncode(line: &str, in_block: &mut bool) -> String {
    let bytes = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < bytes.len() {
        if *in_block {
            if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                *in_block = false;
                out.push_str("  ");
                i += 2;
            } else {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => break, // line comment
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                *in_block = true;
                out.push_str("  ");
                i += 2;
            }
            b'"' => {
                out.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out.push_str("  ");
                            i += 2;
                        }
                        b'"' => {
                            out.push('"');
                            i += 1;
                            break;
                        }
                        _ => {
                            out.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            b'\'' if bytes.get(i + 2) == Some(&b'\'') || bytes.get(i + 1) == Some(&b'\\') => {
                // char literal ('x' or '\n'); lifetimes ('a) fall through
                let close = bytes[i + 1..].iter().position(|&b| b == b'\'');
                let len = close.map_or(1, |c| c + 2);
                for _ in 0..len {
                    out.push(' ');
                }
                i += len;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    out
}

/// Column of the first direct-indexing site: a `[` whose previous
/// non-space character is an identifier char, `)`, or `]`. Array/slice type
/// syntax and attributes never match (preceded by `&`, `:`, `#`, `<`, ...).
fn find_direct_index(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' {
            continue;
        }
        let prev = bytes[..i].iter().rev().find(|&&c| c != b' ');
        if let Some(&p) = prev {
            if p.is_ascii_alphanumeric() || p == b'_' || p == b')' || p == b']' {
                return Some(i);
            }
        }
    }
    None
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(line: &str) -> String {
        let mut in_block = false;
        strip_noncode(line, &mut in_block)
    }

    #[test]
    fn strings_and_comments_are_invisible() {
        assert_eq!(strip("let x = 1; // keys[3]"), "let x = 1; ");
        assert!(!strip(r#"format!("{}[{}]", a, b)"#).contains("[{"));
        assert!(find_direct_index(&strip("let c = 'x'; // v[0]")).is_none());
    }

    #[test]
    fn block_comments_span_lines() {
        let mut in_block = false;
        let a = strip_noncode("code(); /* v[0]", &mut in_block);
        assert!(in_block && find_direct_index(&a).is_none());
        let b = strip_noncode("still v[1] */ after()", &mut in_block);
        assert!(!in_block && find_direct_index(&b).is_none());
    }

    #[test]
    fn direct_indexing_is_caught_and_types_are_not() {
        assert!(find_direct_index("let y = keys[i];").is_some());
        assert!(find_direct_index("bridges[0][5] += 1;").is_some());
        assert!(find_direct_index("f(x)[0]").is_some());
        assert!(find_direct_index("fn f(keys: &[K]) -> [u32; 4] {").is_none());
        assert!(find_direct_index("#[cfg(test)]").is_none());
        assert!(find_direct_index("vec![1, 2]").is_none());
    }

    #[test]
    fn fn_body_range_matches_braces() {
        let src = [
            "fn other() { x[0]; }",
            "fn target(",
            "    a: usize,",
            ") -> usize {",
            "    if a > 0 {",
            "        a",
            "    } else {",
            "        0",
            "    }",
            "}",
            "fn after() { y[1]; }",
        ];
        let (s, e) = fn_body_range(&src, "target").unwrap();
        assert_eq!((s, e), (1, 10));
        // `targeted` must not match `target`.
        let src2 = ["fn targeted() { }", "fn target() { }"];
        assert_eq!(fn_body_range(&src2, "target").unwrap(), (1, 2));
    }

    #[test]
    fn lint_scoped_flags_violations_in_scope_only() {
        let src = "fn hot() {\n    let x = v[0].unwrap();\n}\nfn cold() { w[1].expect(\"no\"); }\n";
        let mut f = Vec::new();
        lint_scoped("t.rs", src, Scope::Fn("hot"), &mut f);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().any(|m| m.contains(".unwrap")));
        assert!(f.iter().any(|m| m.contains("direct slice indexing")));
    }

    #[test]
    fn until_tests_stops_at_cfg_test() {
        let src = "let a = b[0];\n#[cfg(test)]\nmod tests { fn t() { c[1]; } }\n";
        let mut f = Vec::new();
        lint_scoped("t.rs", src, Scope::UntilTests, &mut f);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].starts_with("t.rs:1:"));
    }
}
