//! Catalog keys.
//!
//! The paper's catalogs are sorted lists of distinct entries, each list
//! terminated by a conceptual `+∞` entry. [`CatalogKey`] captures exactly
//! what the algorithms need: a total order, cheap copies, and a supremum
//! value used for the terminal entries and for the *sparse node* key of the
//! skeleton trees (Section 2.1, "Our Final Approach").

use std::cmp::Ordering;

/// An ordered key type usable in catalogs.
///
/// `SUPREMUM` must compare `>=` every value the application stores; the
/// structures reserve it for terminal entries, so applications should avoid
/// storing it as a real key (debug assertions check this).
pub trait CatalogKey: Copy + Ord + std::fmt::Debug + Send + Sync + 'static {
    /// The `+∞` terminal value.
    const SUPREMUM: Self;
}

impl CatalogKey for i64 {
    const SUPREMUM: Self = i64::MAX;
}

impl CatalogKey for i32 {
    const SUPREMUM: Self = i32::MAX;
}

impl CatalogKey for u64 {
    const SUPREMUM: Self = u64::MAX;
}

impl CatalogKey for u32 {
    const SUPREMUM: Self = u32::MAX;
}

/// A totally ordered `f64` wrapper for geometric coordinates.
///
/// NaNs are rejected at construction, which makes the ordering total and
/// lets the geometry crates use floating-point y-coordinates as catalog
/// keys.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wrap a finite-or-infinite (non-NaN) float.
    ///
    /// # Panics
    /// Panics on NaN.
    #[inline]
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "OrdF64 cannot hold NaN");
        OrdF64(v)
    }

    /// The wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is rejected at construction.
        self.0.partial_cmp(&other.0).expect("no NaN in OrdF64")
    }
}

impl From<f64> for OrdF64 {
    fn from(v: f64) -> Self {
        OrdF64::new(v)
    }
}

impl CatalogKey for OrdF64 {
    const SUPREMUM: Self = OrdF64(f64::INFINITY);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants, clippy::absurd_extreme_comparisons)]
    // documents the SUPREMUM contract
    fn suprema_dominate() {
        assert!(i64::SUPREMUM >= 123456789);
        assert!(u32::SUPREMUM >= 42);
        assert!(OrdF64::SUPREMUM >= OrdF64::new(1e300));
    }

    #[test]
    fn ordf64_orders_like_f64() {
        let a = OrdF64::new(-1.5);
        let b = OrdF64::new(0.0);
        let c = OrdF64::new(2.25);
        assert!(a < b && b < c);
        assert_eq!(OrdF64::new(1.0), OrdF64::new(1.0));
        assert!(OrdF64::new(f64::NEG_INFINITY) < a);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn ordf64_rejects_nan() {
        let _ = OrdF64::new(f64::NAN);
    }
}
