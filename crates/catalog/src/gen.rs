//! Synthetic workload generators.
//!
//! The paper evaluates no concrete datasets — its claims are worst-case
//! bounds over *all* trees with catalogs. These generators produce the
//! instance families the analysis distinguishes:
//!
//! * balanced binary trees with uniformly distributed catalog sizes (the
//!   common case of Theorem 1),
//! * trees with highly *skewed* catalog sizes — "individual catalogs may
//!   contain as many as `Θ(n)` entries" — the case that defeats the paper's
//!   first two preprocessing approaches,
//! * long paths and caterpillars (Theorem 2's `k`-length search paths),
//! * `d`-ary trees (Theorem 3's degree dependence).

use crate::key::CatalogKey;
use crate::tree::CatalogTree;
use rand::prelude::*;

/// How the `total` catalog entries are distributed over the nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Each entry lands in a uniformly random node.
    Uniform,
    /// A fraction `f` of all entries is concentrated in one random node;
    /// the rest is uniform. Models the `Θ(n)`-catalog adversary.
    SingleHeavy(f64),
    /// Entries concentrate near the root geometrically (factor 2 per level).
    RootHeavy,
    /// Entries concentrate in the leaves.
    LeafHeavy,
}

/// Draw `count` distinct sorted keys from `0..range`.
///
/// # Panics
/// Panics if `count > range`.
pub fn distinct_sorted_keys(count: usize, range: i64, rng: &mut impl Rng) -> Vec<i64> {
    assert!(
        count as i64 <= range,
        "cannot draw {count} distinct keys from 0..{range}"
    );
    // Oversample, dedupe, trim; retry with more slack if unlucky.
    let mut slack = count / 8 + 16;
    loop {
        let mut v: Vec<i64> = (0..count + slack)
            .map(|_| rng.gen_range(0..range))
            .collect();
        v.sort_unstable();
        v.dedup();
        if v.len() >= count {
            // Drop random surplus elements, keeping the result sorted.
            while v.len() > count {
                let i = rng.gen_range(0..v.len());
                v.remove(i);
            }
            return v;
        }
        slack = slack * 2 + 16;
    }
}

/// Split `total` entries into `buckets` counts according to `dist`.
fn size_counts(
    buckets: usize,
    total: usize,
    dist: SizeDist,
    depths: &[u32],
    rng: &mut impl Rng,
) -> Vec<usize> {
    let mut counts = vec![0usize; buckets];
    match dist {
        SizeDist::Uniform => {
            for _ in 0..total {
                counts[rng.gen_range(0..buckets)] += 1;
            }
        }
        SizeDist::SingleHeavy(f) => {
            assert!((0.0..=1.0).contains(&f));
            let heavy = rng.gen_range(0..buckets);
            let h = (total as f64 * f) as usize;
            counts[heavy] += h;
            for _ in 0..total - h {
                counts[rng.gen_range(0..buckets)] += 1;
            }
        }
        SizeDist::RootHeavy | SizeDist::LeafHeavy => {
            let max_d = depths.iter().copied().max().unwrap_or(0) as f64;
            let weights: Vec<f64> = depths
                .iter()
                .map(|&d| {
                    let x = if dist == SizeDist::RootHeavy {
                        max_d - d as f64
                    } else {
                        d as f64
                    };
                    (2f64).powf(x.min(40.0))
                })
                .collect();
            let sum: f64 = weights.iter().sum();
            for _ in 0..total {
                let mut t = rng.gen::<f64>() * sum;
                let mut idx = 0;
                for (i, w) in weights.iter().enumerate() {
                    t -= w;
                    if t <= 0.0 {
                        idx = i;
                        break;
                    }
                }
                counts[idx] += 1;
            }
        }
    }
    counts
}

/// Fill a tree shape (given as parent links) with random catalogs.
fn fill(
    parents: Vec<Option<u32>>,
    total: usize,
    dist: SizeDist,
    rng: &mut impl Rng,
) -> CatalogTree<i64> {
    // Depths for the distribution weights.
    let mut depths = vec![0u32; parents.len()];
    for (i, p) in parents.iter().enumerate() {
        if let Some(p) = p {
            depths[i] = depths[*p as usize] + 1;
        }
    }
    let counts = size_counts(parents.len(), total, dist, &depths, rng);
    let range = (total as i64 * 16).max(1024);
    let catalogs = counts
        .iter()
        .map(|&c| distinct_sorted_keys(c, range, rng))
        .collect();
    CatalogTree::from_parents(parents, catalogs)
}

/// Parent links of a complete binary tree with `2^(height+1) - 1` nodes,
/// in BFS order (node 0 is the root; node `i`'s children are `2i+1`, `2i+2`).
pub fn complete_binary_parents(height: u32) -> Vec<Option<u32>> {
    let n = (1usize << (height + 1)) - 1;
    (0..n)
        .map(|i| {
            if i == 0 {
                None
            } else {
                Some(((i - 1) / 2) as u32)
            }
        })
        .collect()
}

/// A complete binary tree of the given height with `total` entries
/// distributed per `dist`.
pub fn balanced_binary(
    height: u32,
    total: usize,
    dist: SizeDist,
    rng: &mut impl Rng,
) -> CatalogTree<i64> {
    fill(complete_binary_parents(height), total, dist, rng)
}

/// A path of `len` nodes (root at one end) with `total` entries.
pub fn path(len: usize, total: usize, dist: SizeDist, rng: &mut impl Rng) -> CatalogTree<i64> {
    assert!(len >= 1);
    let parents = (0..len)
        .map(|i| if i == 0 { None } else { Some(i as u32 - 1) })
        .collect();
    fill(parents, total, dist, rng)
}

/// A caterpillar: a spine of `spine` nodes, each with one extra leaf child.
pub fn caterpillar(spine: usize, total: usize, rng: &mut impl Rng) -> CatalogTree<i64> {
    assert!(spine >= 1);
    let mut parents = Vec::with_capacity(2 * spine);
    // Interleave spine and leaf nodes so parents precede children.
    // Node 2i = spine node i; node 2i+1 = leaf hanging off spine node i.
    for i in 0..spine {
        parents.push(if i == 0 {
            None
        } else {
            Some(2 * (i as u32 - 1))
        });
        parents.push(Some(2 * i as u32));
    }
    fill(parents, total, SizeDist::Uniform, rng)
}

/// A complete `d`-ary tree of the given height.
pub fn dary(d: usize, height: u32, total: usize, rng: &mut impl Rng) -> CatalogTree<i64> {
    assert!(d >= 2);
    let mut count = 1usize;
    let mut level = 1usize;
    for _ in 0..height {
        level *= d;
        count += level;
    }
    let parents = (0..count)
        .map(|i| {
            if i == 0 {
                None
            } else {
                Some(((i - 1) / d) as u32)
            }
        })
        .collect();
    fill(parents, total, SizeDist::Uniform, rng)
}

/// Uniform random query values spanning the generated key range (slightly
/// beyond both ends so boundary cases occur).
pub fn random_queries(count: usize, total: usize, rng: &mut impl Rng) -> Vec<i64> {
    let range = (total as i64 * 16).max(1024);
    (0..count).map(|_| rng.gen_range(-8..range + 8)).collect()
}

/// Pick a uniformly random leaf of `tree`.
pub fn random_leaf<K: CatalogKey>(
    tree: &CatalogTree<K>,
    rng: &mut impl Rng,
) -> crate::tree::NodeId {
    let leaves = tree.leaves();
    leaves[rng.gen_range(0..leaves.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;

    #[test]
    fn distinct_sorted_keys_are_distinct_and_sorted() {
        let mut rng = SmallRng::seed_from_u64(7);
        for count in [0, 1, 5, 100, 2000] {
            let v = distinct_sorted_keys(count, 1 << 40, &mut rng);
            assert_eq!(v.len(), count);
            assert!(v.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn distinct_sorted_keys_tight_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v = distinct_sorted_keys(100, 100, &mut rng);
        assert_eq!(v, (0..100).collect::<Vec<i64>>());
    }

    #[test]
    fn balanced_binary_has_expected_shape_and_size() {
        let mut rng = SmallRng::seed_from_u64(42);
        let t = balanced_binary(5, 1000, SizeDist::Uniform, &mut rng);
        assert_eq!(t.len(), 63);
        assert_eq!(t.height(), 5);
        assert_eq!(t.total_catalog_size(), 1000);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.leaves().len(), 32);
    }

    #[test]
    fn single_heavy_concentrates_entries() {
        let mut rng = SmallRng::seed_from_u64(3);
        let t = balanced_binary(4, 4000, SizeDist::SingleHeavy(0.5), &mut rng);
        let max_cat = t.ids().map(|id| t.catalog(id).len()).max().unwrap();
        assert!(max_cat >= 2000, "heavy node got {max_cat}");
        assert_eq!(t.total_catalog_size(), 4000);
    }

    #[test]
    fn root_and_leaf_heavy_skew_as_named() {
        let mut rng = SmallRng::seed_from_u64(9);
        let tr = balanced_binary(4, 4000, SizeDist::RootHeavy, &mut rng);
        let tl = balanced_binary(4, 4000, SizeDist::LeafHeavy, &mut rng);
        let root_share_r = tr.catalog(tr.root()).len();
        let root_share_l = tl.catalog(tl.root()).len();
        assert!(root_share_r > root_share_l);
    }

    #[test]
    fn path_is_a_path() {
        let mut rng = SmallRng::seed_from_u64(11);
        let t = path(20, 200, SizeDist::Uniform, &mut rng);
        assert_eq!(t.len(), 20);
        assert_eq!(t.height(), 19);
        assert_eq!(t.max_degree(), 1);
        assert_eq!(t.leaves().len(), 1);
    }

    #[test]
    fn caterpillar_shape() {
        let mut rng = SmallRng::seed_from_u64(12);
        let t = caterpillar(10, 300, &mut rng);
        assert_eq!(t.len(), 20);
        assert_eq!(t.max_degree(), 2);
        // one pendant leaf per spine node (the last spine node's only child
        // is its pendant leaf, so the spine end itself is internal)
        assert_eq!(t.leaves().len(), 10);
    }

    #[test]
    fn dary_shape() {
        let mut rng = SmallRng::seed_from_u64(13);
        let t = dary(4, 3, 500, &mut rng);
        assert_eq!(t.len(), 1 + 4 + 16 + 64);
        assert_eq!(t.max_degree(), 4);
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let t1 = balanced_binary(4, 500, SizeDist::Uniform, &mut SmallRng::seed_from_u64(5));
        let t2 = balanced_binary(4, 500, SizeDist::Uniform, &mut SmallRng::seed_from_u64(5));
        for id in t1.ids() {
            assert_eq!(t1.catalog(id), t2.catalog(id));
        }
    }
}
