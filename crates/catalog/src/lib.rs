//! # fc-catalog — trees with catalogs and fractional cascading
//!
//! This crate implements the *substrate* of the paper: a rooted tree whose
//! nodes store sorted catalogs, preprocessed by **fractional cascading**
//! (Chazelle–Guibas; parallel construction à la Atallah–Cole–Goodrich) so
//! that a key can be located in every catalog along a root-to-leaf path in
//! `O(log n + m)` sequential time instead of `O(m log n)`.
//!
//! The structure built here — augmented catalogs with *bridge* pointers that
//! satisfy the fan-out property (Property 1 of Section 2 of the paper), the
//! adjacency property (Property 2), and bridge monotonicity (Property 3) —
//! is the input to the cooperative-search preprocessing in `fc-coop`.
//!
//! Layout:
//! * [`key`] — the `CatalogKey` trait (ordered keys with a `+∞` supremum).
//! * [`tree`] — arena-allocated rooted trees with per-node catalogs.
//! * [`gen`] — synthetic workload generators (balanced, skewed, paths,
//!   caterpillars, d-ary trees; uniform and adversarial catalog-size
//!   distributions).
//! * [`cascade`] — the fractional cascaded structure `S` and its builders
//!   (sequential and level-parallel with PRAM cost accounting).
//! * [`search`] — the sequential search baselines: naive per-node binary
//!   search and fractionally cascaded iterative search.
//! * [`invariants`] — checkers for Properties 1–3, used by tests and by the
//!   Figure 4 experiment.

#![warn(missing_docs)]
// Explicit index loops mirror the one-processor-per-index PRAM semantics.
#![allow(clippy::needless_range_loop)]

pub mod cascade;
pub mod error;
pub mod gen;
pub mod invariants;
pub mod key;
pub mod pipeline;
pub mod search;
pub mod tree;

pub use cascade::{BridgeRows, CascadeArena, CascadedNodeMut, CascadedNodeRef, CascadedTree};
pub use error::FcError;
pub use key::CatalogKey;
pub use search::{search_path_fc, search_path_fc_into, search_path_naive, PathSearchOutput};
pub use tree::{CatalogTree, NodeId};
