//! Sequential search baselines along explicit root-to-leaf paths.
//!
//! Two algorithms, both returning `find(y, v)` for every node `v` on the
//! path (the paper's search output, Section 1):
//!
//! * [`search_path_naive`] — an independent binary search per node:
//!   `O(m log n)` for a path of `m` nodes. This is the strawman fractional
//!   cascading beats.
//! * [`search_path_fc`] — one binary search at the first node, then a
//!   bridge + constant-length walk per edge: `O(log n + m)`. This is the
//!   classical sequential fractional cascading search and the `p = 1`
//!   baseline of the cooperative experiments.

use crate::cascade::{CascadedTree, Find};
use crate::key::CatalogKey;
use crate::tree::{CatalogTree, NodeId};
use fc_pram::cost::Pram;
use fc_pram::primitives::lower_bound;

/// Output of a path search: `results[i]` is `find(y, path[i])`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSearchOutput {
    /// One result per path node, in path order.
    pub results: Vec<Find>,
}

/// Binary search independently in every catalog of `path`.
///
/// If `pram` is given, each node charges `ceil(log2(catalog len + 1))`
/// sequential steps (a single processor walks the path).
pub fn search_path_naive<K: CatalogKey>(
    tree: &CatalogTree<K>,
    path: &[NodeId],
    y: K,
    mut pram: Option<&mut Pram>,
) -> PathSearchOutput {
    let results = path
        .iter()
        .map(|&id| {
            let cat = tree.catalog(id);
            if let Some(pram) = pram.as_deref_mut() {
                let len = cat.len();
                pram.seq(((usize::BITS - len.leading_zeros()) as usize).max(1));
            }
            Find {
                native_idx: lower_bound(cat, &y) as u32,
            }
        })
        .collect();
    PathSearchOutput { results }
}

/// Fractionally cascaded sequential search: binary search in the first
/// path node's augmented catalog, then one bridge + back-walk per edge.
///
/// `path` must be a downward path (each element a child of the previous).
/// If `pram` is given, charges `log |A_root|` steps for the entry search
/// and `1 + walk` steps per edge.
///
/// # Panics
/// Panics (debug) if `path` is not a connected downward path.
pub fn search_path_fc<K: CatalogKey>(
    fc: &CascadedTree<K>,
    path: &[NodeId],
    y: K,
    pram: Option<&mut Pram>,
) -> PathSearchOutput {
    let mut results = Vec::with_capacity(path.len());
    search_path_fc_into(fc, path, y, pram, &mut results);
    PathSearchOutput { results }
}

/// [`search_path_fc`] writing into a caller-supplied buffer (cleared
/// first) — the batched hot loop's form: reusing one buffer across a
/// query stream removes the per-query allocation entirely.
pub fn search_path_fc_into<K: CatalogKey>(
    fc: &CascadedTree<K>,
    path: &[NodeId],
    y: K,
    mut pram: Option<&mut Pram>,
    results: &mut Vec<Find>,
) {
    assert!(!path.is_empty(), "path must be nonempty");
    let tree = fc.tree();
    results.clear();

    let mut aug = fc.find_aug(path[0], y);
    if let Some(pram) = pram.as_deref_mut() {
        let len = fc.keys(path[0]).len();
        pram.seq(((usize::BITS - len.leading_zeros()) as usize).max(1));
    }
    results.push(fc.native_result(path[0], aug));

    for w in path.windows(2) {
        let (parent, child) = (w[0], w[1]);
        let slot = tree.child_slot(parent, child);
        let (next, walked) = fc.descend(parent, slot, aug, y);
        if let Some(pram) = pram.as_deref_mut() {
            pram.seq(1 + walked);
        }
        aug = next;
        results.push(fc.native_result(child, aug));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, SizeDist};
    use fc_pram::Model;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fc_matches_naive_on_random_trees() {
        let mut rng = SmallRng::seed_from_u64(101);
        for height in [0u32, 1, 3, 6, 9] {
            let total = 200usize << height.min(6);
            let tree = gen::balanced_binary(height, total, SizeDist::Uniform, &mut rng);
            let fc = CascadedTree::build(tree.clone(), 4);
            for _ in 0..20 {
                let leaf = gen::random_leaf(&tree, &mut rng);
                let path = tree.path_from_root(leaf);
                let y = rng.gen_range(-10..(total as i64 * 16) + 10);
                let a = search_path_naive(&tree, &path, y, None);
                let b = search_path_fc(&fc, &path, y, None);
                assert_eq!(a, b, "height {height} y {y}");
            }
        }
    }

    #[test]
    fn fc_is_cheaper_than_naive_on_deep_paths() {
        let mut rng = SmallRng::seed_from_u64(103);
        let tree = gen::balanced_binary(10, 1 << 15, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build(tree.clone(), 4);
        let leaf = gen::random_leaf(&tree, &mut rng);
        let path = tree.path_from_root(leaf);
        let mut naive_cost = Pram::new(1, Model::Crew);
        let mut fc_cost = Pram::new(1, Model::Crew);
        for _ in 0..50 {
            let y = rng.gen_range(0..(1i64 << 19));
            search_path_naive(&tree, &path, y, Some(&mut naive_cost));
            search_path_fc(&fc, &path, y, Some(&mut fc_cost));
        }
        assert!(
            fc_cost.steps() * 2 < naive_cost.steps(),
            "fc {} vs naive {}",
            fc_cost.steps(),
            naive_cost.steps()
        );
    }

    #[test]
    fn works_on_single_node_path() {
        let mut rng = SmallRng::seed_from_u64(105);
        let tree = gen::balanced_binary(3, 100, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build(tree.clone(), 4);
        let path = vec![tree.root()];
        let out = search_path_fc(&fc, &path, 50, None);
        assert_eq!(out.results.len(), 1);
        assert_eq!(out, search_path_naive(&tree, &path, 50, None));
    }

    #[test]
    fn extreme_queries_hit_boundaries() {
        let mut rng = SmallRng::seed_from_u64(107);
        let tree = gen::balanced_binary(5, 500, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build(tree.clone(), 4);
        let leaf = gen::random_leaf(&tree, &mut rng);
        let path = tree.path_from_root(leaf);
        for y in [i64::MIN, -1, 0, i64::MAX - 1] {
            let a = search_path_naive(&tree, &path, y, None);
            let b = search_path_fc(&fc, &path, y, None);
            assert_eq!(a, b, "y {y}");
        }
        // y below everything: every result must be index 0.
        let lo = search_path_fc(&fc, &path, i64::MIN, None);
        assert!(lo.results.iter().all(|f| f.native_idx == 0));
        // y above everything: every result must be the catalog length.
        let hi = search_path_fc(&fc, &path, i64::MAX - 1, None);
        for (f, &id) in hi.results.iter().zip(&path) {
            assert_eq!(f.native_idx as usize, tree.catalog(id).len());
        }
    }

    #[test]
    fn works_on_path_trees() {
        let mut rng = SmallRng::seed_from_u64(109);
        let tree = gen::path(64, 2000, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build(tree.clone(), 4);
        let leaf = *tree.leaves().first().unwrap();
        let path = tree.path_from_root(leaf);
        assert_eq!(path.len(), 64);
        for _ in 0..10 {
            let y = rng.gen_range(0..32_000);
            assert_eq!(
                search_path_naive(&tree, &path, y, None),
                search_path_fc(&fc, &path, y, None)
            );
        }
    }
}
