//! Pipelined cascade construction — the Atallah–Cole–Goodrich schedule
//! ("cascading divide-and-conquer", reference [1] of the paper).
//!
//! The level-synchronous build ([`CascadedTree::build_cost`]) needs
//! `O(log² n)` PRAM depth: each of the `log n` levels waits for the full
//! merge below it. ACG pipeline the levels Cole-style: every node
//! *streams* its growing list upward, and every list is released
//! **geometrically** — a node first exposes every `2^k`-th element of what
//! it currently knows, halving the stride each round. Two invariants make
//! the schedule an `O(log n)`-depth, linear-work EREW computation:
//!
//! * each round, a node's exposed list grows by a bounded-*cover*
//!   increment (the new sample is a constant cover of the old one), so the
//!   incremental merge at the parent takes `O(1)` depth with one processor
//!   per new item and work proportional to the growth;
//! * a node's list stabilises `O(1)` rounds after its children stabilise
//!   *and* its own stride reaches 1, so the root stabilises after
//!   `O(height + log(max catalog)) = O(log n)` rounds on balanced trees.
//!
//! This module **executes the schedule for real** — round by round, each
//! node recomputes its staged list from its stride and its children's
//! previous-round lists — measures its depth (rounds) and work (sum of
//! per-round list growth), verifies that the fixpoint equals the direct
//! construction, and returns the finished [`CascadedTree`]. The per-round
//! incremental-merge *cost* is charged per ACG's accounting (`O(1)` depth,
//! work = growth); the recomputation here is the simulator's
//! implementation detail, exactly as with the search windows (DESIGN.md).

use crate::cascade::CascadedTree;
use crate::key::CatalogKey;
use crate::tree::CatalogTree;
use fc_pram::cost::Pram;
use fc_pram::primitives::merge_seq;
use fc_pram::shadow::{NoTrace, Tracer};

/// Flat double-buffered staging for the per-round exposed lists: every
/// node's list concatenated node-major with `u32` span offsets, one buffer
/// per round parity — the storage analogue of the `("pipe-even"` /
/// `"pipe-odd")` regions the trace describes (DESIGN.md §14).
struct FlatLists<K> {
    data: Vec<K>,
    off: Vec<u32>,
}

impl<K: Copy> FlatLists<K> {
    fn empty(n_nodes: usize) -> Self {
        FlatLists {
            data: Vec::new(),
            off: vec![0; n_nodes + 1],
        }
    }

    fn for_next_round(&self, n_nodes: usize) -> Self {
        let mut off = Vec::with_capacity(n_nodes + 1);
        off.push(0);
        FlatLists {
            data: Vec::with_capacity(self.data.len()),
            off,
        }
    }

    fn get(&self, idx: usize) -> &[K] {
        &self.data[self.off[idx] as usize..self.off[idx + 1] as usize]
    }

    fn len_of(&self, idx: usize) -> usize {
        (self.off[idx + 1] - self.off[idx]) as usize
    }

    /// Append the next node's list; nodes must be pushed in id order.
    fn push_list(&mut self, list: &[K]) {
        self.data.extend_from_slice(list);
        self.off.push(self.data.len() as u32);
    }
}

/// Statistics of one pipelined construction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Synchronous rounds until the root stabilised (the schedule's depth).
    pub rounds: u64,
    /// Total items incorporated across all rounds (the schedule's work).
    pub work: u64,
    /// Largest single-round work (bounds the processors needed for the
    /// claimed depth).
    pub max_round_ops: usize,
}

/// Build the (downward) cascaded structure with the pipelined schedule,
/// charging `pram` one round per schedule round with the incremental
/// work. Returns the structure plus the measured schedule statistics.
///
/// The resulting structure is bit-identical to [`CascadedTree::build`]
/// (asserted in debug builds and by tests).
pub fn build_pipelined<K: CatalogKey>(
    tree: CatalogTree<K>,
    sample: usize,
    pram: Option<&mut Pram>,
) -> (CascadedTree<K>, PipelineStats) {
    build_pipelined_traced(tree, sample, pram, &mut NoTrace)
}

/// [`build_pipelined`] with every logical access reported to a [`Tracer`].
///
/// The pipelined schedule is EREW because of three structural facts, which
/// the emission makes checkable:
///
/// * **parity double-buffering** — round `r` reads every node's exposed
///   list from the buffer written in round `r − 1` (`("pipe-even", node)`
///   or `("pipe-odd", node)` by round parity) and writes the other one, so
///   a round never reads a cell it writes;
/// * **one parent per child** — a node's exposed list is sampled by its
///   unique parent only, and each sampled cell is read by one processor;
/// * **settled hand-off** — every active node also writes its list to a
///   stable copy `("pipe-final", node)`; once a node settles it stops
///   writing, and from the next round on its parent samples the stable
///   copy — reader and writer are never in the same round.
///
/// A final `pipe/publish` phase replays the bridge construction exactly as
/// [`CascadedTree::try_build_traced`]'s publish (one processor per entry).
/// Results are bit-identical to [`build_pipelined`], including the stats.
pub fn build_pipelined_traced<K: CatalogKey, Tr: Tracer>(
    tree: CatalogTree<K>,
    sample: usize,
    mut pram: Option<&mut Pram>,
    tr: &mut Tr,
) -> (CascadedTree<K>, PipelineStats) {
    assert!(sample >= 2 && sample > tree.max_degree());
    let n_nodes = tree.len();

    // Staged state per node, in the flat parity buffer.
    let mut cur: FlatLists<K> = FlatLists::empty(n_nodes);
    let mut stride: Vec<usize> = Vec::with_capacity(n_nodes);
    let mut settled: Vec<bool> = vec![false; n_nodes];
    for id in tree.ids() {
        // Initial own-catalog stride: smallest power of two >= |C_v| + 1,
        // so the first exposure is O(1) items and the catalog streams out
        // geometrically.
        let len = tree.catalog(id).len() + 1;
        stride.push(len.next_power_of_two());
    }

    let mut stats = PipelineStats {
        rounds: 0,
        work: 0,
        max_round_ops: 0,
    };
    // Generous guard: height + log of the largest staged list + slack.
    let max_rounds = 4
        * (tree.height() as usize
            + (usize::BITS - tree.total_catalog_size().max(2).leading_zeros()) as usize
            + 8);

    while !settled[tree.root().idx()] {
        stats.rounds += 1;
        assert!(
            (stats.rounds as usize) <= max_rounds,
            "pipelined schedule failed to converge"
        );
        let mut round_ops = 0usize;
        // Compute this round's lists from last round's (synchronous PRAM
        // round: everyone reads the previous state). The write-parity
        // buffer is rebuilt node-major; a settled node's stable span is
        // carried over by memcpy.
        let mut next: FlatLists<K> = cur.for_next_round(n_nodes);
        for id in tree.ids() {
            if settled[id.idx()] {
                next.push_list(cur.get(id.idx()));
                continue;
            }
            // Staged own catalog: every `stride`-th element (stride 1 =
            // the full catalog).
            let native = tree.catalog(id);
            let own: Vec<K> = if stride[id.idx()] == 1 {
                native.to_vec()
            } else {
                native
                    .iter()
                    .skip(stride[id.idx()] - 1)
                    .step_by(stride[id.idx()])
                    .copied()
                    .collect()
            };
            // Children contributions: the cascade's 1/s sample of their
            // *current* exposed lists.
            let mut acc = own;
            for &c in tree.children(id) {
                let sampled: Vec<K> = cur
                    .get(c.idx())
                    .iter()
                    .skip(sample - 1)
                    .step_by(sample)
                    .copied()
                    .collect();
                acc = merge_seq(&acc, &sampled);
            }
            while acc.last() == Some(&K::SUPREMUM) {
                acc.pop();
            }
            acc.push(K::SUPREMUM);
            let growth = acc.len().saturating_sub(cur.len_of(id.idx()));
            round_ops += growth.max(1);
            next.push_list(&acc);
        }
        if tr.live() {
            tr.phase("pipe/round");
            // Parity double-buffer: this round reads the buffer written
            // last round and writes the other one.
            let (read_buf, write_buf) = if stats.rounds.is_multiple_of(2) {
                ("pipe-odd", "pipe-even")
            } else {
                ("pipe-even", "pipe-odd")
            };
            let mut pid = 0usize;
            for id in tree.ids() {
                if settled[id.idx()] {
                    continue;
                }
                let list = next.get(id.idx());
                // Own catalog, stride-sampled: private reads.
                let st = stride[id.idx()];
                let native_len = tree.catalog(id).len();
                let mut pos = st - 1;
                if st == 1 {
                    pos = 0;
                }
                while pos < native_len {
                    tr.read(pid, ("native", id.idx()), pos);
                    pid += 1;
                    pos += st.max(1);
                }
                // Children's exposed lists, 1/s-sampled: the unique parent
                // is the only reader; settled children are sampled from
                // their stable copy, which nobody writes anymore.
                for &c in tree.children(id) {
                    let region = if settled[c.idx()] {
                        ("pipe-final", c.idx())
                    } else {
                        (read_buf, c.idx())
                    };
                    let mut cpos = sample - 1;
                    while cpos < cur.len_of(c.idx()) {
                        tr.read(pid, region, cpos);
                        pid += 1;
                        cpos += sample;
                    }
                }
                // Output: one processor per entry, writing the parity
                // buffer and the stable copy — both exclusively owned.
                for i in 0..list.len() {
                    tr.write(pid, (write_buf, id.idx()), i);
                    tr.write(pid, ("pipe-final", id.idx()), i);
                    pid += 1;
                }
            }
            tr.barrier();
        }
        // Commit (swap the parity buffers); update strides and settledness.
        for id in tree.ids() {
            if settled[id.idx()] {
                continue;
            }
            let stable = next.get(id.idx()) == cur.get(id.idx());
            if stride[id.idx()] > 1 {
                stride[id.idx()] /= 2;
            } else if stable && tree.children(id).iter().all(|c| settled[c.idx()]) {
                settled[id.idx()] = true;
            }
        }
        cur = next;
        stats.work += round_ops as u64;
        stats.max_round_ops = stats.max_round_ops.max(round_ops);
        if let Some(pram) = pram.as_deref_mut() {
            pram.round(round_ops);
        }
    }

    // The fixpoint is exactly the direct construction's augmented lists;
    // build the bridges from them (one more charged round).
    let fc = CascadedTree::build(tree, sample);
    for id in fc.tree().ids() {
        debug_assert_eq!(
            cur.get(id.idx()),
            fc.keys(id),
            "pipelined fixpoint must equal the direct construction at {id:?}"
        );
    }
    if let Some(pram) = pram {
        pram.round(fc.total_aug_size());
    }
    if tr.live() {
        // Publish: one processor per augmented entry converts the stable
        // copy into the final structure (keys, native successors, bridges),
        // mirroring the level-synchronous build's publish phase.
        tr.phase("pipe/publish");
        let slot_span = fc.tree().max_degree() + 1;
        let mut pid = 0usize;
        for id in fc.tree().ids() {
            let entries = fc.keys(id).len();
            let slots = fc.tree().children(id).len();
            for i in 0..entries {
                tr.read(pid, ("pipe-final", id.idx()), i);
                tr.write(pid, ("aug", id.idx()), i);
                tr.write(pid, ("nsucc", id.idx()), i);
                for slot in 0..slots {
                    tr.write(pid, ("bridge", id.idx() * slot_span + slot), i);
                }
                pid += 1;
            }
        }
        tr.barrier();
    }
    (fc, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, SizeDist};
    use fc_pram::{Model, Pram};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pipelined_equals_direct_build() {
        let mut rng = SmallRng::seed_from_u64(901);
        for dist in [
            SizeDist::Uniform,
            SizeDist::SingleHeavy(0.7),
            SizeDist::RootHeavy,
        ] {
            let tree = gen::balanced_binary(8, 6000, dist, &mut rng);
            let direct = CascadedTree::build(tree.clone(), 4);
            let (piped, _) = build_pipelined(tree, 4, None);
            for id in direct.tree().ids() {
                assert_eq!(direct.keys(id), piped.keys(id), "{dist:?}");
                assert_eq!(direct.aug(id).bridges, piped.aug(id).bridges);
            }
        }
    }

    #[test]
    fn traced_pipeline_matches_untraced_and_is_erew_clean() {
        use fc_pram::shadow::ShadowMem;
        let mut rng = SmallRng::seed_from_u64(919);
        for dist in [SizeDist::Uniform, SizeDist::SingleHeavy(0.8)] {
            let tree = gen::balanced_binary(6, 2500, dist, &mut rng);
            let (plain, plain_stats) = build_pipelined(tree.clone(), 4, None);
            let mut sh = ShadowMem::new(Model::Erew);
            let (traced, traced_stats) = build_pipelined_traced(tree, 4, None, &mut sh);
            assert!(sh.finish(), "{dist:?}: {:?}", &sh.violations()[..1]);
            assert_eq!(plain_stats, traced_stats);
            for id in plain.tree().ids() {
                assert_eq!(plain.keys(id), traced.keys(id));
                assert_eq!(plain.aug(id).bridges, traced.aug(id).bridges);
            }
            let phases: Vec<&str> = sh.phase_stats().iter().map(|&(p, _)| p).collect();
            assert!(phases.contains(&"pipe/round"));
            assert!(phases.contains(&"pipe/publish"));
        }
    }

    #[test]
    fn depth_is_logarithmic_not_log_squared() {
        let mut rng = SmallRng::seed_from_u64(903);
        let mut rows = Vec::new();
        for exp in [12u32, 14, 16] {
            let n = 1usize << exp;
            let tree = gen::balanced_binary(exp - 4, n, SizeDist::Uniform, &mut rng);
            let (_, stats) = build_pipelined(tree, 4, None);
            rows.push((exp, stats.rounds));
        }
        // Rounds must grow linearly in log n (additive constant per
        // doubling), far below log^2 n.
        for w in rows.windows(2) {
            let delta = w[1].1 as i64 - w[0].1 as i64;
            assert!(
                (0..=12).contains(&delta),
                "rounds must grow ~linearly in log n: {rows:?}"
            );
        }
        let (exp, rounds) = rows[rows.len() - 1];
        assert!(
            rounds <= 4 * exp as u64,
            "rounds {rounds} exceed 4 log n = {}",
            4 * exp
        );
    }

    #[test]
    fn work_is_linear() {
        let mut rng = SmallRng::seed_from_u64(907);
        for exp in [12u32, 14, 16] {
            let n = 1usize << exp;
            let tree = gen::balanced_binary(exp - 4, n, SizeDist::Uniform, &mut rng);
            let nodes = tree.len() as u64;
            let (fc, stats) = build_pipelined(tree, 4, None);
            let bound = 4 * fc.total_aug_size() as u64 + 8 * nodes;
            assert!(
                stats.work <= bound,
                "n = 2^{exp}: work {} exceeds linear bound {bound}",
                stats.work
            );
        }
    }

    #[test]
    fn pram_charging_matches_stats() {
        let mut rng = SmallRng::seed_from_u64(911);
        let tree = gen::balanced_binary(8, 5000, SizeDist::Uniform, &mut rng);
        let n = tree.total_catalog_size();
        let procs = (n / 12).max(1);
        let mut pram = Pram::new(procs, Model::Erew);
        let (fc, stats) = build_pipelined(tree, 4, Some(&mut pram));
        // With ~n/log n processors every round fits in O(1) steps, so the
        // charged steps stay within a small factor of the round count.
        assert!(pram.steps() >= stats.rounds);
        assert!(
            pram.steps() <= 4 * stats.rounds + 8,
            "steps {} vs rounds {}",
            pram.steps(),
            stats.rounds
        );
        assert_eq!(pram.work(), stats.work + fc.total_aug_size() as u64);
    }

    #[test]
    fn single_node_and_tiny_trees() {
        let tree = CatalogTree::from_parents(vec![None], vec![vec![5i64, 9]]);
        let (fc, stats) = build_pipelined(tree, 4, None);
        assert_eq!(fc.keys(crate::tree::NodeId(0)), &[5, 9, i64::SUPREMUM]);
        assert!(stats.rounds >= 1);

        let mut rng = SmallRng::seed_from_u64(913);
        let tree = gen::balanced_binary(1, 10, SizeDist::Uniform, &mut rng);
        let direct = CascadedTree::build(tree.clone(), 4);
        let (piped, _) = build_pipelined(tree, 4, None);
        for id in direct.tree().ids() {
            assert_eq!(direct.keys(id), piped.keys(id));
        }
    }

    #[test]
    fn giant_single_catalog_streams_geometrically() {
        // One leaf holds almost everything: the schedule's depth must be
        // height + O(log catalog), not height * log.
        let mut rng = SmallRng::seed_from_u64(917);
        let tree = gen::balanced_binary(6, 40_000, SizeDist::SingleHeavy(0.95), &mut rng);
        let (_, stats) = build_pipelined(tree, 4, None);
        // log2(40000) ~ 15.3, height 6: comfortably under 4*(6+16).
        assert!(stats.rounds <= 4 * (6 + 16), "rounds {}", stats.rounds);
    }
}
