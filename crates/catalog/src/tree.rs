//! Flat structure-of-arrays rooted ordered trees with per-node catalogs.
//!
//! The paper's object of study is "a rooted tree `T` with `O(n)` nodes
//! storing catalogs of total size `n`" (Section 1). [`CatalogTree`] is that
//! object, stored as parallel flat arrays indexed by [`NodeId`]: parent and
//! depth words, an ordered child list flattened into one `Vec<NodeId>` with
//! per-node `(offset, len)` spans, and every catalog concatenated into one
//! `Vec<K>` with matching spans. Individual catalogs may be empty or hold
//! `Θ(n)` entries — the variable-size case is exactly what makes the
//! paper's preprocessing nontrivial (end of Section 2, "First Approach").
//!
//! The SoA layout (DESIGN.md §14) removes one pointer indirection from
//! every descent step: `catalog(v)` is a bounds-checked slice of a single
//! contiguous allocation instead of a chase through a `Vec<Vec<K>>`, and
//! the whole tree clones with `O(arrays)` memcpys instead of `O(nodes)`
//! heap allocations.

use crate::key::CatalogKey;

/// Index of a node in a [`CatalogTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as a usize.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel parent word for the root (no parent).
const NO_PARENT: u32 = u32::MAX;

/// A rooted ordered tree with catalogs, in structure-of-arrays layout.
///
/// All per-node arrays are parallel and indexed by [`NodeId`]; the child
/// and catalog arrays are shared flat storage sliced by `u32` offset
/// tables of length `len() + 1` (span of node `v` = `off[v]..off[v + 1]`),
/// so both total sizes are capped at `u32::MAX` entries — enforced at
/// construction, and far above the paper's `O(n)` regimes.
#[derive(Debug, Clone)]
pub struct CatalogTree<K> {
    /// `parents[v]` = parent index, [`NO_PARENT`] for the root.
    parents: Vec<u32>,
    /// `depths[v]` = depth from the root (root = 0).
    depths: Vec<u32>,
    /// All ordered child lists, concatenated in node order.
    children_flat: Vec<NodeId>,
    /// Child span offsets (`len() + 1` entries, monotone).
    child_off: Vec<u32>,
    /// All sorted catalogs, concatenated in node order.
    catalog_flat: Vec<K>,
    /// Catalog span offsets (`len() + 1` entries, monotone).
    cat_off: Vec<u32>,
    root: NodeId,
}

impl<K: CatalogKey> CatalogTree<K> {
    /// Build a tree from parallel arrays: `parents[i]` is the parent of node
    /// `i` (`None` exactly for the root) and `catalogs[i]` its sorted
    /// catalog. Children are ordered by node index.
    ///
    /// # Panics
    /// Panics if there is not exactly one root, if a parent index is out of
    /// range or not older than its child (parents must precede children,
    /// i.e. the arrays must be in topological order), or if any catalog is
    /// not strictly increasing.
    pub fn from_parents(parents: Vec<Option<u32>>, catalogs: Vec<Vec<K>>) -> Self {
        assert_eq!(parents.len(), catalogs.len());
        assert!(!parents.is_empty(), "tree must have at least one node");
        let n = parents.len();
        assert!(n < NO_PARENT as usize, "node count exceeds u32 indexing");

        // Pass 1: validate parents, count children, derive depths.
        let mut parent_words = vec![NO_PARENT; n];
        let mut depths = vec![0u32; n];
        let mut child_counts = vec![0u32; n];
        let mut root = None;
        for (i, par) in parents.iter().enumerate() {
            match par {
                None => {
                    assert!(root.is_none(), "more than one root");
                    root = Some(NodeId(i as u32));
                }
                Some(p) => {
                    let p = *p as usize;
                    assert!(p < i, "parent {p} must precede child {i}");
                    parent_words[i] = p as u32;
                    depths[i] = depths[p] + 1;
                    child_counts[p] += 1;
                }
            }
        }
        let root = root.expect("tree must have a root");

        // Child spans: prefix sums of the counts, then a second pass fills
        // each span in ascending node order (= the ordered child list).
        let mut child_off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        for &c in &child_counts {
            child_off.push(acc);
            acc += c;
        }
        child_off.push(acc);
        let mut children_flat = vec![NodeId(0); acc as usize];
        let mut cursor = child_off.clone();
        for (i, &pw) in parent_words.iter().enumerate() {
            if pw != NO_PARENT {
                children_flat[cursor[pw as usize] as usize] = NodeId(i as u32);
                cursor[pw as usize] += 1;
            }
        }

        // Catalog spans: validate order, then concatenate.
        let total: usize = catalogs.iter().map(Vec::len).sum();
        assert!(total < u32::MAX as usize, "catalog total exceeds u32 spans");
        let mut cat_off = Vec::with_capacity(n + 1);
        let mut catalog_flat = Vec::with_capacity(total);
        for (i, catalog) in catalogs.into_iter().enumerate() {
            assert!(
                catalog.windows(2).all(|w| w[0] < w[1]),
                "catalog of node {i} must be strictly increasing"
            );
            debug_assert!(
                catalog.last().is_none_or(|&k| k < K::SUPREMUM),
                "catalog of node {i} must not contain the SUPREMUM sentinel"
            );
            cat_off.push(catalog_flat.len() as u32);
            catalog_flat.extend(catalog);
        }
        cat_off.push(catalog_flat.len() as u32);

        CatalogTree {
            parents: parent_words,
            depths,
            children_flat,
            child_off,
            catalog_flat,
            cat_off,
            root,
        }
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// Whether the tree has no nodes (never true: construction requires one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// The sorted catalog of `id`.
    #[inline]
    pub fn catalog(&self, id: NodeId) -> &[K] {
        let lo = self.cat_off[id.idx()] as usize;
        let hi = self.cat_off[id.idx() + 1] as usize;
        &self.catalog_flat[lo..hi]
    }

    /// All catalogs concatenated node-major — the flat backing array.
    /// Snapshot encoding walks this in one pass; node `id`'s span is
    /// exactly [`CatalogTree::catalog`]`(id)`.
    #[inline]
    pub fn catalog_flat(&self) -> &[K] {
        &self.catalog_flat
    }

    /// Ordered children of `id`.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        let lo = self.child_off[id.idx()] as usize;
        let hi = self.child_off[id.idx() + 1] as usize;
        &self.children_flat[lo..hi]
    }

    /// Parent of `id`, `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        let p = self.parents[id.idx()];
        (p != NO_PARENT).then_some(NodeId(p))
    }

    /// Depth of `id` (root = 0).
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.depths[id.idx()]
    }

    /// Whether `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.child_off[id.idx()] == self.child_off[id.idx() + 1]
    }

    /// Iterator over all node ids in arena (topological) order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.parents.len() as u32).map(NodeId)
    }

    /// All leaves, in arena order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.ids().filter(|&id| self.is_leaf(id)).collect()
    }

    /// Total number of catalog entries over all nodes (the paper's `n`).
    #[inline]
    pub fn total_catalog_size(&self) -> usize {
        self.catalog_flat.len()
    }

    /// Maximum node degree (number of children).
    pub fn max_degree(&self) -> usize {
        self.child_off
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Height of the tree (longest root-to-leaf edge count).
    pub fn height(&self) -> u32 {
        self.depths.iter().copied().max().unwrap_or(0)
    }

    /// The path from the root to `leaf`, inclusive, as node ids.
    ///
    /// # Panics
    /// Panics (debug) if `leaf` is not in the arena.
    pub fn path_from_root(&self, leaf: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.depth(leaf) as usize + 1);
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            path.push(id);
            cur = self.parent(id);
        }
        path.reverse();
        debug_assert_eq!(path[0], self.root);
        path
    }

    /// Which child slot of `parent` leads to `child`.
    ///
    /// # Panics
    /// Panics if `child` is not a child of `parent`.
    pub fn child_slot(&self, parent: NodeId, child: NodeId) -> usize {
        self.children(parent)
            .iter()
            .position(|&c| c == child)
            .expect("child_slot: not a child of parent")
    }

    /// Nodes grouped by depth: `levels()[d]` lists all nodes at depth `d`.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); self.height() as usize + 1];
        for id in self.ids() {
            levels[self.depth(id) as usize].push(id);
        }
        levels
    }

    /// Recompute every node's depth with the Euler tour technique
    /// (`fc-pram::listrank`): `O(log n)` EREW rounds — the parallel tree
    /// preprocessing step the paper's `O(log n)`-time bound presumes.
    /// Returns the depths (equal to the stored depth words, asserted in
    /// tests) and charges the cost to `pram`.
    pub fn depths_parallel(&self, pram: &mut fc_pram::cost::Pram) -> Vec<u32> {
        let parent: Vec<usize> = self
            .parents
            .iter()
            .enumerate()
            .map(|(i, &p)| if p == NO_PARENT { i } else { p as usize })
            .collect();
        let children: Vec<Vec<usize>> = self
            .ids()
            .map(|id| self.children(id).iter().map(|c| c.idx()).collect())
            .collect();
        fc_pram::listrank::euler_tour_depths(&parent, &children, pram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed tree:
    /// ```text
    ///        0 [10,20]
    ///       / \
    ///  [5] 1   2 [15,25,35]
    ///     / \
    ///    3   4 []
    ///  [1,2]
    /// ```
    fn sample() -> CatalogTree<i64> {
        CatalogTree::from_parents(
            vec![None, Some(0), Some(0), Some(1), Some(1)],
            vec![vec![10, 20], vec![5], vec![15, 25, 35], vec![1, 2], vec![]],
        )
    }

    #[test]
    fn structure_queries() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
        assert_eq!(t.depth(NodeId(4)), 2);
        assert!(t.is_leaf(NodeId(2)));
        assert!(!t.is_leaf(NodeId(1)));
        assert_eq!(t.height(), 2);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.total_catalog_size(), 8);
        assert_eq!(t.leaves(), vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn flat_spans_are_contiguous_and_ordered() {
        let t = sample();
        // Catalog spans tile one contiguous array in node order.
        assert_eq!(t.cat_off, vec![0, 2, 3, 6, 8, 8]);
        assert_eq!(t.catalog_flat, vec![10, 20, 5, 15, 25, 35, 1, 2]);
        // Child spans likewise, each span ordered by node index.
        assert_eq!(t.child_off, vec![0, 2, 4, 4, 4, 4]);
        assert_eq!(
            t.children_flat,
            vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
        assert_eq!(t.catalog(NodeId(2)), &[15, 25, 35]);
    }

    #[test]
    fn path_from_root_walks_up() {
        let t = sample();
        assert_eq!(
            t.path_from_root(NodeId(3)),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
        assert_eq!(t.path_from_root(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn child_slots() {
        let t = sample();
        assert_eq!(t.child_slot(NodeId(0), NodeId(1)), 0);
        assert_eq!(t.child_slot(NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn levels_group_by_depth() {
        let t = sample();
        let lv = t.levels();
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0], vec![NodeId(0)]);
        assert_eq!(lv[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(lv[2], vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn empty_catalogs_are_allowed() {
        let t = sample();
        assert!(t.catalog(NodeId(4)).is_empty());
    }

    #[test]
    fn parallel_depths_match_stored_depths() {
        let t = sample();
        let mut pram = fc_pram::Pram::new(16, fc_pram::Model::Erew);
        let depths = t.depths_parallel(&mut pram);
        for id in t.ids() {
            assert_eq!(depths[id.idx()], t.depth(id));
        }
        assert!(pram.rounds() > 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_catalog_rejected() {
        let _ = CatalogTree::from_parents(vec![None], vec![vec![3i64, 1]]);
    }

    #[test]
    #[should_panic(expected = "more than one root")]
    fn two_roots_rejected() {
        let _ = CatalogTree::from_parents(vec![None, None], vec![vec![], Vec::<i64>::new()]);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn parent_after_child_rejected() {
        let _ = CatalogTree::from_parents(vec![Some(1), None], vec![vec![], Vec::<i64>::new()]);
    }
}
