//! Arena-allocated rooted ordered trees with per-node catalogs.
//!
//! The paper's object of study is "a rooted tree `T` with `O(n)` nodes
//! storing catalogs of total size `n`" (Section 1). [`CatalogTree`] is that
//! object: nodes live in a flat arena indexed by [`NodeId`], each node keeps
//! an ordered child list and a sorted catalog. Individual catalogs may be
//! empty or hold `Θ(n)` entries — the variable-size case is exactly what
//! makes the paper's preprocessing nontrivial (end of Section 2, "First
//! Approach").

use crate::key::CatalogKey;

/// Index of a node in a [`CatalogTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as a usize.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One tree node: parent link, ordered children, sorted catalog.
#[derive(Debug, Clone)]
pub struct Node<K> {
    /// Parent, `None` for the root.
    pub parent: Option<NodeId>,
    /// Ordered child list (left-to-right).
    pub children: Vec<NodeId>,
    /// Sorted catalog of native entries (strictly increasing).
    pub catalog: Vec<K>,
    /// Depth from the root (root = 0).
    pub depth: u32,
}

/// A rooted ordered tree with catalogs.
#[derive(Debug, Clone)]
pub struct CatalogTree<K> {
    nodes: Vec<Node<K>>,
    root: NodeId,
}

impl<K: CatalogKey> CatalogTree<K> {
    /// Build a tree from parallel arrays: `parents[i]` is the parent of node
    /// `i` (`None` exactly for the root) and `catalogs[i]` its sorted
    /// catalog. Children are ordered by node index.
    ///
    /// # Panics
    /// Panics if there is not exactly one root, if a parent index is out of
    /// range or not older than its child (parents must precede children,
    /// i.e. the arrays must be in topological order), or if any catalog is
    /// not strictly increasing.
    pub fn from_parents(parents: Vec<Option<u32>>, catalogs: Vec<Vec<K>>) -> Self {
        assert_eq!(parents.len(), catalogs.len());
        assert!(!parents.is_empty(), "tree must have at least one node");
        let mut nodes: Vec<Node<K>> = Vec::with_capacity(parents.len());
        let mut root = None;
        for (i, (par, catalog)) in parents.into_iter().zip(catalogs).enumerate() {
            assert!(
                catalog.windows(2).all(|w| w[0] < w[1]),
                "catalog of node {i} must be strictly increasing"
            );
            debug_assert!(
                catalog.last().is_none_or(|&k| k < K::SUPREMUM),
                "catalog of node {i} must not contain the SUPREMUM sentinel"
            );
            let depth = match par {
                None => {
                    assert!(root.is_none(), "more than one root");
                    root = Some(NodeId(i as u32));
                    0
                }
                Some(p) => {
                    assert!((p as usize) < i, "parent {p} must precede child {i}");
                    nodes[p as usize].children.push(NodeId(i as u32));
                    nodes[p as usize].depth + 1
                }
            };
            nodes.push(Node {
                parent: par.map(NodeId),
                children: Vec::new(),
                catalog,
                depth,
            });
        }
        CatalogTree {
            nodes,
            root: root.expect("tree must have a root"),
        }
    }

    /// The root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree has no nodes (never true: construction requires one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node<K> {
        &self.nodes[id.idx()]
    }

    /// The sorted catalog of `id`.
    #[inline]
    pub fn catalog(&self, id: NodeId) -> &[K] {
        &self.nodes[id.idx()].catalog
    }

    /// Ordered children of `id`.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.idx()].children
    }

    /// Parent of `id`, `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.idx()].parent
    }

    /// Depth of `id` (root = 0).
    #[inline]
    pub fn depth(&self, id: NodeId) -> u32 {
        self.nodes[id.idx()].depth
    }

    /// Whether `id` is a leaf.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.nodes[id.idx()].children.is_empty()
    }

    /// Iterator over all node ids in arena (topological) order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All leaves, in arena order.
    pub fn leaves(&self) -> Vec<NodeId> {
        self.ids().filter(|&id| self.is_leaf(id)).collect()
    }

    /// Total number of catalog entries over all nodes (the paper's `n`).
    pub fn total_catalog_size(&self) -> usize {
        self.nodes.iter().map(|nd| nd.catalog.len()).sum()
    }

    /// Maximum node degree (number of children).
    pub fn max_degree(&self) -> usize {
        self.nodes
            .iter()
            .map(|nd| nd.children.len())
            .max()
            .unwrap_or(0)
    }

    /// Height of the tree (longest root-to-leaf edge count).
    pub fn height(&self) -> u32 {
        self.nodes.iter().map(|nd| nd.depth).max().unwrap_or(0)
    }

    /// The path from the root to `leaf`, inclusive, as node ids.
    ///
    /// # Panics
    /// Panics (debug) if `leaf` is not in the arena.
    pub fn path_from_root(&self, leaf: NodeId) -> Vec<NodeId> {
        let mut path = Vec::with_capacity(self.depth(leaf) as usize + 1);
        let mut cur = Some(leaf);
        while let Some(id) = cur {
            path.push(id);
            cur = self.parent(id);
        }
        path.reverse();
        debug_assert_eq!(path[0], self.root);
        path
    }

    /// Which child slot of `parent` leads to `child`.
    ///
    /// # Panics
    /// Panics if `child` is not a child of `parent`.
    pub fn child_slot(&self, parent: NodeId, child: NodeId) -> usize {
        self.children(parent)
            .iter()
            .position(|&c| c == child)
            .expect("child_slot: not a child of parent")
    }

    /// Nodes grouped by depth: `levels()[d]` lists all nodes at depth `d`.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels: Vec<Vec<NodeId>> = vec![Vec::new(); self.height() as usize + 1];
        for id in self.ids() {
            levels[self.depth(id) as usize].push(id);
        }
        levels
    }

    /// Mutable access to a node's catalog (used by generators/tests).
    pub fn catalog_mut(&mut self, id: NodeId) -> &mut Vec<K> {
        &mut self.nodes[id.idx()].catalog
    }

    /// Recompute every node's depth with the Euler tour technique
    /// (`fc-pram::listrank`): `O(log n)` EREW rounds — the parallel tree
    /// preprocessing step the paper's `O(log n)`-time bound presumes.
    /// Returns the depths (equal to the stored [`Node::depth`] values,
    /// asserted in tests) and charges the cost to `pram`.
    pub fn depths_parallel(&self, pram: &mut fc_pram::cost::Pram) -> Vec<u32> {
        let parent: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, nd)| nd.parent.map_or(i, |p| p.idx()))
            .collect();
        let children: Vec<Vec<usize>> = self
            .nodes
            .iter()
            .map(|nd| nd.children.iter().map(|c| c.idx()).collect())
            .collect();
        fc_pram::listrank::euler_tour_depths(&parent, &children, pram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed tree:
    /// ```text
    ///        0 [10,20]
    ///       / \
    ///  [5] 1   2 [15,25,35]
    ///     / \
    ///    3   4 []
    ///  [1,2]
    /// ```
    fn sample() -> CatalogTree<i64> {
        CatalogTree::from_parents(
            vec![None, Some(0), Some(0), Some(1), Some(1)],
            vec![vec![10, 20], vec![5], vec![15, 25, 35], vec![1, 2], vec![]],
        )
    }

    #[test]
    fn structure_queries() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.children(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(1)));
        assert_eq!(t.depth(NodeId(4)), 2);
        assert!(t.is_leaf(NodeId(2)));
        assert!(!t.is_leaf(NodeId(1)));
        assert_eq!(t.height(), 2);
        assert_eq!(t.max_degree(), 2);
        assert_eq!(t.total_catalog_size(), 8);
        assert_eq!(t.leaves(), vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn path_from_root_walks_up() {
        let t = sample();
        assert_eq!(
            t.path_from_root(NodeId(3)),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
        assert_eq!(t.path_from_root(NodeId(0)), vec![NodeId(0)]);
    }

    #[test]
    fn child_slots() {
        let t = sample();
        assert_eq!(t.child_slot(NodeId(0), NodeId(1)), 0);
        assert_eq!(t.child_slot(NodeId(0), NodeId(2)), 1);
    }

    #[test]
    fn levels_group_by_depth() {
        let t = sample();
        let lv = t.levels();
        assert_eq!(lv.len(), 3);
        assert_eq!(lv[0], vec![NodeId(0)]);
        assert_eq!(lv[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(lv[2], vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn empty_catalogs_are_allowed() {
        let t = sample();
        assert!(t.catalog(NodeId(4)).is_empty());
    }

    #[test]
    fn parallel_depths_match_stored_depths() {
        let t = sample();
        let mut pram = fc_pram::Pram::new(16, fc_pram::Model::Erew);
        let depths = t.depths_parallel(&mut pram);
        for id in t.ids() {
            assert_eq!(depths[id.idx()], t.depth(id));
        }
        assert!(pram.rounds() > 0);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_catalog_rejected() {
        let _ = CatalogTree::from_parents(vec![None], vec![vec![3i64, 1]]);
    }

    #[test]
    #[should_panic(expected = "more than one root")]
    fn two_roots_rejected() {
        let _ = CatalogTree::from_parents(vec![None, None], vec![vec![], Vec::<i64>::new()]);
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn parent_after_child_rejected() {
        let _ = CatalogTree::from_parents(vec![Some(1), None], vec![vec![], Vec::<i64>::new()]);
    }
}
