//! Typed errors for build-time and search-time structural failures.
//!
//! The cascaded structure's correctness rests on the three properties of
//! Section 2; when a property is violated at runtime (memory corruption, a
//! bad dynamic update, a fault-injection experiment), the searches must not
//! return a silently wrong answer. [`FcError`] is the std-only error type
//! carried by the checked builders ([`crate::cascade::CascadedTree::try_build`])
//! and the checked search paths (`fc-coop`'s `coop_search_explicit_checked`),
//! localizing the blame to a (node, slot, entry) coordinate so a repair pass
//! can rebuild exactly the damaged region.

use std::fmt;

/// A localized structural failure in a fractional cascaded structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FcError {
    /// A level-synchronous build observed a node whose children were not
    /// built yet (schedule bug or corrupted level index).
    UnbuiltNode {
        /// Arena index of the offending node.
        node: u32,
    },
    /// A bridge pointer is corrupt: it points outside the child catalog, or
    /// lands so far from the true lower bound that the fan-out property
    /// cannot recover it (undershoot, or a back-walk past `b` steps).
    CorruptBridge {
        /// Arena index of the parent node owning the bridge.
        node: u32,
        /// Child slot of the bridge array.
        slot: usize,
        /// Entry index into the parent's augmented catalog.
        entry: usize,
    },
    /// A hop window failed to cover the true answer (Lemma 3 violation at
    /// search time — corrupt skeleton key or understated fan-out bound).
    WindowOverrun {
        /// Arena index of the node whose window missed.
        node: u32,
        /// Relative level of the node inside its unit.
        level: u32,
        /// The true augmented position that fell outside the window.
        got: usize,
        /// Window lower bound.
        lo: usize,
        /// Window upper bound.
        hi: usize,
    },
    /// An augmented catalog lost its terminal supremum or its sort order —
    /// binary searches on it are meaningless.
    CorruptCatalog {
        /// Arena index of the offending node.
        node: u32,
        /// First entry at which the corruption was observed.
        entry: usize,
    },
    /// Every processor was marked dead before the search completed.
    NoProcessors,
    /// The search was cancelled cooperatively (deadline exceeded or an
    /// explicit cancel) before it completed. Partial results are discarded;
    /// the caller decides whether to retry, degrade, or surface a timeout.
    Cancelled,
}

impl fmt::Display for FcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FcError::UnbuiltNode { node } => {
                write!(f, "node {node} used before its children were built")
            }
            FcError::CorruptBridge { node, slot, entry } => write!(
                f,
                "corrupt bridge at node {node}, child slot {slot}, entry {entry}"
            ),
            FcError::WindowOverrun { node, level, got, lo, hi } => write!(
                f,
                "window overrun at node {node} (unit level {level}): true position {got} outside [{lo}, {hi}]"
            ),
            FcError::CorruptCatalog { node, entry } => {
                write!(f, "corrupt augmented catalog at node {node}, entry {entry}")
            }
            FcError::NoProcessors => write!(f, "all processors died before the search completed"),
            FcError::Cancelled => write!(f, "search cancelled before completion"),
        }
    }
}

impl std::error::Error for FcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_localized() {
        let e = FcError::CorruptBridge {
            node: 7,
            slot: 1,
            entry: 42,
        };
        let s = e.to_string();
        assert!(s.contains('7') && s.contains('1') && s.contains("42"));
        let w = FcError::WindowOverrun {
            node: 3,
            level: 2,
            got: 9,
            lo: 10,
            hi: 12,
        };
        assert!(w.to_string().contains("[10, 12]"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&FcError::NoProcessors);
    }
}
