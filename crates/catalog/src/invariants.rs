//! Checkers for the three fractional cascading properties of Section 2.
//!
//! The cooperative-search analysis (Lemmas 1 and 3) rests entirely on these
//! properties, so the workspace verifies them directly on built structures:
//!
//! 1. **Fan-out** — for consecutive path nodes `v, w`: `find(y, w)` is
//!    within `b` entries of `bridge[v, w, find(y, v)]`.
//! 2. **Adjacency** — adjacent entries of `v` bridge to positions at most
//!    `2b + 1` apart in each child.
//! 3. **Monotonicity** — bridges never cross.
//!
//! [`check_all`] returns the empirical constants so experiments (Figure 4)
//! can report measured versus guaranteed bounds.

use crate::cascade::CascadedTree;
use crate::key::CatalogKey;

/// Empirical property report for a built [`CascadedTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropertyReport {
    /// Guaranteed fan-out bound `b = s - 1`.
    pub b_guaranteed: usize,
    /// Largest back-walk actually needed by any (entry, child) pair.
    pub b_observed: usize,
    /// Guaranteed adjacency bound `2b + 1`.
    pub adjacency_guaranteed: usize,
    /// Largest observed bridge-target gap between adjacent entries.
    pub adjacency_observed: usize,
    /// Whether all bridges are monotone (Property 3).
    pub monotone: bool,
    /// Bridges pointing strictly before the true lower bound (impossible
    /// for a correctly built structure; nonzero only under corruption).
    pub undershoots: usize,
}

/// Verify Properties 1–3 exhaustively over all nodes, entries, and children.
///
/// Runs in time linear in the structure size times the fan-out constant.
/// Panics are *not* used: violations are reported so property tests can give
/// useful counterexamples.
pub fn check_all<K: CatalogKey>(fc: &CascadedTree<K>) -> PropertyReport {
    let tree = fc.tree();
    let b = fc.fanout_bound();
    let mut b_observed = 0usize;
    let mut adjacency_observed = 0usize;
    let mut monotone = true;
    let mut undershoots = 0usize;

    for v in tree.ids() {
        let aug_v = fc.aug(v);
        for (slot, &w) in tree.children(v).iter().enumerate() {
            let bridges = &aug_v.bridges[slot];
            let child_keys = &fc.aug(w).keys;
            // Property 3: monotone bridges.
            if bridges.windows(2).any(|pair| pair[0] > pair[1]) {
                monotone = false;
            }
            // Property 2: adjacent-entry bridge gap (saturating: crossing
            // bridges are already reported via Property 3).
            for pair in bridges.windows(2) {
                adjacency_observed =
                    adjacency_observed.max(pair[1].saturating_sub(pair[0]) as usize);
            }
            // Property 1: for every augmented entry key (used as a probe y),
            // the child's true lower bound is within b back-steps of the
            // bridge target. Probing at the entry keys themselves (and just
            // below them) covers all distinct outcomes of find.
            for (i, &bt) in bridges.iter().enumerate() {
                let y = aug_v.keys[i];
                let true_pos = child_keys.partition_point(|k| *k < y);
                if true_pos > bt as usize {
                    undershoots += 1;
                } else {
                    b_observed = b_observed.max(bt as usize - true_pos);
                }
            }
        }
    }

    PropertyReport {
        b_guaranteed: b,
        b_observed,
        adjacency_guaranteed: 2 * b + 1,
        adjacency_observed,
        monotone,
        undershoots,
    }
}

/// Check that the report satisfies the guarantees; returns an error message
/// describing the first violated property, if any.
pub fn validate(report: &PropertyReport) -> Result<(), String> {
    if !report.monotone {
        return Err("Property 3 violated: bridges cross".into());
    }
    if report.undershoots > 0 {
        return Err(format!(
            "{} bridges undershoot their true lower bound (corruption)",
            report.undershoots
        ));
    }
    if report.b_observed > report.b_guaranteed {
        return Err(format!(
            "Property 1 violated: observed fan-out {} exceeds b = {}",
            report.b_observed, report.b_guaranteed
        ));
    }
    if report.adjacency_observed > report.adjacency_guaranteed {
        return Err(format!(
            "Property 2 violated: observed adjacency gap {} exceeds 2b+1 = {}",
            report.adjacency_observed, report.adjacency_guaranteed
        ));
    }
    Ok(())
}

/// Measured analogue of Figure 4 / Lemma 1's separation formula: the largest
/// distance in a parent catalog between two entries whose bridges point to
/// entries exactly `r` apart in the child, tabulated for `r = 0..=r_max`.
///
/// Lemma 1 proves this is at most `(2b + 1)(2b + r + 1) - 1`.
#[allow(clippy::needless_range_loop)] // two-pointer sweep over index pairs
pub fn bridge_separation_profile<K: CatalogKey>(fc: &CascadedTree<K>, r_max: usize) -> Vec<usize> {
    let tree = fc.tree();
    let mut profile = vec![0usize; r_max + 1];
    for v in tree.ids() {
        for (slot, _) in tree.children(v).iter().enumerate() {
            let bridges = &fc.aug(v).bridges[slot];
            // For each child distance r, find the max index separation of
            // parent entries bridging to targets exactly r apart. Bridges
            // are monotone, so a two-pointer sweep per r suffices.
            for r in 0..=r_max {
                let mut best = 0usize;
                let mut lo = 0usize;
                for hi in 0..bridges.len() {
                    while bridges[hi] - bridges[lo] > r as u32 {
                        lo += 1;
                    }
                    if (bridges[hi] - bridges[lo]) as usize == r {
                        best = best.max(hi - lo);
                    }
                }
                profile[r] = profile[r].max(best);
            }
        }
    }
    profile
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::CascadedTree;
    use crate::gen::{self, SizeDist};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn properties_hold_on_uniform_trees() {
        let mut rng = SmallRng::seed_from_u64(211);
        for height in [0u32, 2, 5, 8] {
            let tree =
                gen::balanced_binary(height, 500 << height.min(4), SizeDist::Uniform, &mut rng);
            let fc = CascadedTree::build(tree, 4);
            let report = check_all(&fc);
            validate(&report).unwrap();
        }
    }

    #[test]
    fn properties_hold_on_skewed_trees() {
        let mut rng = SmallRng::seed_from_u64(223);
        for dist in [
            SizeDist::SingleHeavy(0.8),
            SizeDist::RootHeavy,
            SizeDist::LeafHeavy,
        ] {
            let tree = gen::balanced_binary(6, 4000, dist, &mut rng);
            let fc = CascadedTree::build(tree, 4);
            validate(&check_all(&fc)).unwrap();
        }
    }

    #[test]
    fn properties_hold_on_dary_trees() {
        let mut rng = SmallRng::seed_from_u64(227);
        let tree = gen::dary(3, 4, 3000, &mut rng);
        let fc = CascadedTree::build(tree, 7);
        let report = check_all(&fc);
        validate(&report).unwrap();
        assert_eq!(report.b_guaranteed, 6);
    }

    #[test]
    fn separation_profile_respects_lemma1_bound() {
        let mut rng = SmallRng::seed_from_u64(229);
        let tree = gen::balanced_binary(7, 8000, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build(tree, 4);
        let b = fc.fanout_bound();
        let profile = bridge_separation_profile(&fc, 8);
        for (r, &sep) in profile.iter().enumerate() {
            let bound = (2 * b + 1) * (2 * b + r + 1) - 1;
            assert!(sep <= bound, "r={r}: separation {sep} > bound {bound}");
        }
    }

    #[test]
    fn observed_constants_do_not_exceed_guarantees() {
        let mut rng = SmallRng::seed_from_u64(233);
        let tree = gen::balanced_binary(6, 3000, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build(tree, 4);
        let report = check_all(&fc);
        assert!(report.b_observed <= report.b_guaranteed);
        assert!(report.adjacency_observed <= report.adjacency_guaranteed);
        assert!(report.monotone);
    }
}
