//! The fractional cascaded structure `S` (Section 2 of the paper).
//!
//! Every node's native catalog is *augmented* with a `1/s` sample of each
//! child's augmented catalog (plus a terminal `+∞`), and every augmented
//! entry stores:
//!
//! * `native_succ` — the position of the smallest **native** entry `>=` the
//!   augmented key, which converts an augmented-catalog location into the
//!   `find(y, v)` answer the application wants;
//! * one **bridge** per child — the position of the smallest entry `>=` the
//!   augmented key in that child's augmented catalog.
//!
//! With sampling factor `s` strictly greater than the node degree, the total
//! augmented size is `O(n)` and the structure satisfies the paper's three
//! properties (Section 2):
//!
//! 1. *Fan-out*: `find(y, w)` lies within `b = s - 1` entries of
//!    `bridge[v, w, find(y, v)]`.
//! 2. Adjacent entries of `v` bridge to positions at most `2b + 1` apart in
//!    a child.
//! 3. Bridges never cross (they are monotone in the entry order).
//!
//! Properties 1 and 3 hold by construction (verified by
//! [`crate::invariants`]); property 2 is implied and measured by the
//! Figure 4 experiment.
//!
//! **Storage (DESIGN.md §14).** The whole structure lives in a
//! [`CascadeArena`]: one flat `Vec<K>` holding every node's augmented
//! catalog back to back with per-node `(offset, len)` `u32` spans, a
//! parallel flat `u32` array for the native successors, and one flat `u32`
//! array for all bridges (node-major, one `t_v`-long row per child slot).
//! A descent step therefore touches three contiguous arrays instead of
//! chasing `Vec<Vec<_>>` pointers, the probe itself is the branchless
//! `fc_pram::lower_bound`, and publishing a new generation is a handful of
//! memcpys. Per-node access goes through the borrowed views
//! [`CascadedNodeRef`] / [`CascadedNodeMut`].
//!
//! Three builders are provided: [`CascadedTree::build`] (sequential
//! bottom-up), [`CascadedTree::build_par`] (rayon, level-synchronous), and
//! [`CascadedTree::build_cost`] (level-synchronous with EREW PRAM cost
//! accounting). All three produce bit-identical structures; the
//! level-synchronous schedule costs `O(log² n)` PRAM steps, a relaxation of
//! the `O(log n)` pipelined schedule of Atallah–Cole–Goodrich [1]
//! (documented in DESIGN.md; the pipelined *cost schedule* is available as
//! [`CascadedTree::pipelined_depth_estimate`] for the preprocessing
//! experiment). Construction stages per-node `Vec`s (cold path) and then
//! publishes them into the arena in one flattening pass, which is what
//! keeps every builder bit-identical to the pre-arena layout.

use crate::error::FcError;
use crate::key::CatalogKey;
use crate::tree::{CatalogTree, NodeId};
use fc_pram::cost::Pram;
use fc_pram::primitives::lower_bound;
use fc_pram::shadow::Tracer;
use rayon::prelude::*;

/// Flat structure-of-arrays storage for every node's augmented catalog,
/// native-successor table, and bridge rows (DESIGN.md §14).
///
/// Span invariants, enforced at publish time:
///
/// * `key_off` has `nodes + 1` monotone entries; node `v`'s augmented keys
///   and native successors are the parallel slices
///   `keys[key_off[v]..key_off[v + 1]]` /
///   `native_succ[key_off[v]..key_off[v + 1]]`, always non-empty (the
///   terminal `+∞` guarantees `t_v >= 1`);
/// * `bridge_off` has `nodes + 1` monotone entries; node `v`'s block
///   `bridges[bridge_off[v]..bridge_off[v + 1]]` is `degree(v)` rows of
///   exactly `t_v` entries each (row = child slot, in child order);
/// * all offsets are `u32`, so the structure caps at `2^32 - 1` augmented
///   entries — far above the paper's `O(n)` regimes, and half the index
///   width of a pointer-per-node layout.
///
/// Cloning the arena is five `memcpy`s, which is what makes generation
/// publish in `fc-serve` cheap, and the flat sections encode/decode into
/// snapshots without per-node walks.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeArena<K> {
    /// Every augmented catalog, node-major.
    keys: Vec<K>,
    /// `native_succ[i]` parallel to `keys[i]`.
    native_succ: Vec<u32>,
    /// Key/native-successor span offsets (`nodes + 1` entries).
    key_off: Vec<u32>,
    /// All bridge rows, node-major then slot-major.
    bridges: Vec<u32>,
    /// Bridge block offsets (`nodes + 1` entries).
    bridge_off: Vec<u32>,
}

impl<K: CatalogKey> CascadeArena<K> {
    /// Flatten staged per-node buffers into the arena, checking the span
    /// invariants once here so every later access can trust them.
    fn publish(bufs: Vec<NodeBuf<K>>) -> Self {
        let total_keys: usize = bufs.iter().map(|b| b.keys.len()).sum();
        let total_bridges: usize = bufs.iter().map(|b| b.keys.len() * b.bridges.len()).sum();
        assert!(
            total_keys < u32::MAX as usize && total_bridges < u32::MAX as usize,
            "augmented structure exceeds u32 spans"
        );
        let mut keys = Vec::with_capacity(total_keys);
        let mut native_succ = Vec::with_capacity(total_keys);
        let mut key_off = Vec::with_capacity(bufs.len() + 1);
        let mut bridges = Vec::with_capacity(total_bridges);
        let mut bridge_off = Vec::with_capacity(bufs.len() + 1);
        for buf in bufs {
            let t = buf.keys.len();
            assert!(t >= 1, "augmented catalog missing its terminal +inf");
            assert_eq!(t, buf.native_succ.len(), "native_succ span mismatch");
            key_off.push(keys.len() as u32);
            bridge_off.push(bridges.len() as u32);
            keys.extend(buf.keys);
            native_succ.extend(buf.native_succ);
            for row in buf.bridges {
                assert_eq!(t, row.len(), "bridge row span mismatch");
                bridges.extend(row);
            }
        }
        key_off.push(keys.len() as u32);
        bridge_off.push(bridges.len() as u32);
        CascadeArena {
            keys,
            native_succ,
            key_off,
            bridges,
            bridge_off,
        }
    }

    /// Augmented key span of node `v`.
    #[inline]
    fn keys_of(&self, id: NodeId) -> &[K] {
        let lo = self.key_off[id.idx()] as usize;
        let hi = self.key_off[id.idx() + 1] as usize;
        &self.keys[lo..hi]
    }

    /// One native-successor cell — the descent's per-node result read,
    /// without materialising a full node view.
    #[inline]
    fn native_succ_at(&self, id: NodeId, i: usize) -> u32 {
        let lo = self.key_off[id.idx()] as usize;
        self.native_succ[lo + i]
    }

    /// One bridge cell `(v, slot, i)` — the descent's hop read, computed
    /// straight off the flat offsets.
    #[inline]
    fn bridge_at(&self, id: NodeId, slot: usize, i: usize) -> u32 {
        let lo = self.key_off[id.idx()] as usize;
        let hi = self.key_off[id.idx() + 1] as usize;
        let base = self.bridge_off[id.idx()] as usize;
        self.bridges[base + slot * (hi - lo) + i]
    }

    /// Borrowed view of one node's three sections.
    #[inline]
    fn node(&self, id: NodeId) -> CascadedNodeRef<'_, K> {
        let lo = self.key_off[id.idx()] as usize;
        let hi = self.key_off[id.idx() + 1] as usize;
        let blo = self.bridge_off[id.idx()] as usize;
        let bhi = self.bridge_off[id.idx() + 1] as usize;
        CascadedNodeRef {
            keys: &self.keys[lo..hi],
            native_succ: &self.native_succ[lo..hi],
            bridges: BridgeRows {
                data: &self.bridges[blo..bhi],
                row_len: hi - lo,
            },
        }
    }

    /// [`CascadeArena::node`] with every lookup bounds-checked: `None`
    /// instead of a panic on an out-of-range id (the checked-descent path).
    fn node_get(&self, id: NodeId) -> Option<CascadedNodeRef<'_, K>> {
        let lo = *self.key_off.get(id.idx())? as usize;
        let hi = *self.key_off.get(id.idx() + 1)? as usize;
        let blo = *self.bridge_off.get(id.idx())? as usize;
        let bhi = *self.bridge_off.get(id.idx() + 1)? as usize;
        Some(CascadedNodeRef {
            keys: self.keys.get(lo..hi)?,
            native_succ: self.native_succ.get(lo..hi)?,
            bridges: BridgeRows {
                data: self.bridges.get(blo..bhi)?,
                row_len: hi - lo,
            },
        })
    }

    /// Mutable view of one node's three sections (split borrows over the
    /// three flat arrays — spans never overlap).
    fn node_mut(&mut self, id: NodeId) -> CascadedNodeMut<'_, K> {
        let lo = self.key_off[id.idx()] as usize;
        let hi = self.key_off[id.idx() + 1] as usize;
        let blo = self.bridge_off[id.idx()] as usize;
        let bhi = self.bridge_off[id.idx() + 1] as usize;
        CascadedNodeMut {
            keys: &mut self.keys[lo..hi],
            native_succ: &mut self.native_succ[lo..hi],
            bridges: BridgeRowsMut {
                data: &mut self.bridges[blo..bhi],
                row_len: hi - lo,
            },
        }
    }

    /// Total augmented entries (the flat key array's length).
    #[inline]
    fn total_entries(&self) -> usize {
        self.keys.len()
    }

    /// Length of the longest per-node span.
    fn max_span(&self) -> usize {
        self.key_off
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }
}

/// Borrowed view of one node's augmented data inside the [`CascadeArena`]:
/// parallel `keys` / `native_succ` slices plus the node's [`BridgeRows`].
/// `Copy`, so it can be passed around like the old per-node struct without
/// touching the arena again.
#[derive(Debug, Clone, Copy)]
pub struct CascadedNodeRef<'a, K> {
    /// Augmented catalog: non-decreasing, always ends with `K::SUPREMUM`.
    pub keys: &'a [K],
    /// `native_succ[i]` = smallest native-catalog index `j` with
    /// `native[j] >= keys[i]`, or `native.len()` if none.
    pub native_succ: &'a [u32],
    /// One bridge row per child slot; `bridges[c][i]` = smallest index `j`
    /// in child `c`'s augmented catalog with `child.keys[j] >= keys[i]`.
    pub bridges: BridgeRows<'a>,
}

/// Mutable counterpart of [`CascadedNodeRef`] — the fault-injection and
/// repair hook. Spans are fixed at build time: cells can be rewritten,
/// rows and catalogs can never change length.
#[derive(Debug)]
pub struct CascadedNodeMut<'a, K> {
    /// Augmented catalog cells (value mutation only).
    pub keys: &'a mut [K],
    /// Native-successor cells, parallel to `keys`.
    pub native_succ: &'a mut [u32],
    /// Bridge rows, one per child slot.
    pub bridges: BridgeRowsMut<'a>,
}

/// A 2-D view over a node's flat bridge block: `len()` rows (one per child
/// slot) of exactly `row_len` entries each. Indexing yields the row slice,
/// so call sites read like the old `Vec<Vec<u32>>` (`bridges[slot][i]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeRows<'a> {
    data: &'a [u32],
    row_len: usize,
}

impl<'a> BridgeRows<'a> {
    /// Number of rows (child slots).
    #[inline]
    pub fn len(self) -> usize {
        self.data.len().checked_div(self.row_len).unwrap_or(0)
    }

    /// Whether the node has no bridge rows (a leaf).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.data.is_empty()
    }

    /// Row for child `slot`, or `None` when out of range. The returned
    /// slice borrows the arena (`'a`), not this view, so it outlives
    /// temporaries.
    #[inline]
    pub fn get(self, slot: usize) -> Option<&'a [u32]> {
        let lo = slot.checked_mul(self.row_len)?;
        self.data.get(lo..lo + self.row_len)
    }

    /// Iterate over the rows in child order.
    pub fn iter(self) -> impl ExactSizeIterator<Item = &'a [u32]> {
        // chunks_exact on an empty slice with row_len 0 would panic; a
        // leaf's empty block yields no rows either way.
        self.data.chunks_exact(self.row_len.max(1))
    }
}

impl std::ops::Index<usize> for BridgeRows<'_> {
    type Output = [u32];
    #[inline]
    fn index(&self, slot: usize) -> &[u32] {
        &self.data[slot * self.row_len..(slot + 1) * self.row_len]
    }
}

/// Mutable counterpart of [`BridgeRows`].
#[derive(Debug)]
pub struct BridgeRowsMut<'a> {
    data: &'a mut [u32],
    row_len: usize,
}

impl BridgeRowsMut<'_> {
    /// Number of rows (child slots).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.row_len).unwrap_or(0)
    }

    /// Whether the node has no bridge rows (a leaf).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Mutable row for child `slot`, or `None` when out of range.
    #[inline]
    pub fn get_mut(&mut self, slot: usize) -> Option<&mut [u32]> {
        let lo = slot.checked_mul(self.row_len)?;
        self.data.get_mut(lo..lo + self.row_len)
    }
}

impl std::ops::Index<usize> for BridgeRowsMut<'_> {
    type Output = [u32];
    #[inline]
    fn index(&self, slot: usize) -> &[u32] {
        &self.data[slot * self.row_len..(slot + 1) * self.row_len]
    }
}

impl std::ops::IndexMut<usize> for BridgeRowsMut<'_> {
    #[inline]
    fn index_mut(&mut self, slot: usize) -> &mut [u32] {
        &mut self.data[slot * self.row_len..(slot + 1) * self.row_len]
    }
}

/// Per-node staging buffer used during construction, before the flattening
/// publish into the [`CascadeArena`]. Building through per-node `Vec`s
/// keeps every builder's merge logic — and therefore its output — bit-for-
/// bit identical to the pre-arena layout; only the final storage changed.
#[derive(Debug, Clone)]
struct NodeBuf<K> {
    keys: Vec<K>,
    native_succ: Vec<u32>,
    bridges: Vec<Vec<u32>>,
}

/// The fractional cascaded data structure over a [`CatalogTree`].
#[derive(Debug, Clone)]
pub struct CascadedTree<K> {
    tree: CatalogTree<K>,
    arena: CascadeArena<K>,
    sample: usize,
}

/// Result of locating `y` at one node: the index of the smallest native
/// entry `>= y`, which equals `catalog.len()` when the answer is the
/// conceptual terminal `+∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Find {
    /// Index into the node's *native* catalog (possibly `== len`).
    pub native_idx: u32,
}

impl<K: CatalogKey> CascadedTree<K> {
    /// Build the cascaded structure sequentially, bottom-up.
    ///
    /// `sample` is the sampling factor `s`; it must exceed the maximum node
    /// degree for the augmented size to stay linear. `s = 4` is the standard
    /// choice for binary trees (total augmented size `<= 2n + O(#nodes)`).
    ///
    /// # Panics
    /// Panics if `sample <= tree.max_degree()` or `sample < 2`, or if the
    /// level schedule is corrupt (see [`CascadedTree::try_build`] for the
    /// non-panicking form).
    pub fn build(tree: CatalogTree<K>, sample: usize) -> Self {
        Self::try_build(tree, sample).unwrap_or_else(|e| panic!("cascade build failed: {e}"))
    }

    /// Fallible form of [`CascadedTree::build`]: a corrupt level schedule
    /// surfaces as [`FcError::UnbuiltNode`] instead of a panic.
    pub fn try_build(tree: CatalogTree<K>, sample: usize) -> Result<Self, FcError> {
        Self::build_inner(tree, sample, BuildMode::Sequential, None)
    }

    /// Build with rayon parallelism (level-synchronous, leaves upward).
    pub fn build_par(tree: CatalogTree<K>, sample: usize) -> Self {
        Self::try_build_par(tree, sample).unwrap_or_else(|e| panic!("cascade build failed: {e}"))
    }

    /// Fallible form of [`CascadedTree::build_par`].
    pub fn try_build_par(tree: CatalogTree<K>, sample: usize) -> Result<Self, FcError> {
        Self::build_inner(tree, sample, BuildMode::Parallel, None)
    }

    /// Build while charging EREW PRAM cost for the level-synchronous
    /// schedule: each level is one batch of independent merges, each merge
    /// charged `O(log len)` rounds of `len` ops (rank-by-binary-search
    /// parallel merge).
    pub fn build_cost(tree: CatalogTree<K>, sample: usize, pram: &mut Pram) -> Self {
        Self::try_build_cost(tree, sample, pram)
            .unwrap_or_else(|e| panic!("cascade build failed: {e}"))
    }

    /// Fallible form of [`CascadedTree::build_cost`].
    pub fn try_build_cost(
        tree: CatalogTree<K>,
        sample: usize,
        pram: &mut Pram,
    ) -> Result<Self, FcError> {
        Self::build_inner(tree, sample, BuildMode::Sequential, Some(pram))
    }

    /// Build the **bidirectional** cascaded structure (the structure the
    /// paper actually takes from [1]): augmented catalogs sample both the
    /// children's and the parent's augmented catalogs. Realised in two
    /// passes over a tree — bottom-up (`B_v = C_v ∪ sample(B_children)`)
    /// then top-down (`A_v = B_v ∪ sample(A_parent)`, parents final first).
    ///
    /// Both directions of Property 2 then hold: at most `s - 1` child
    /// entries sit strictly between consecutive parent-sampled entries
    /// *and* at most `s - 1` parent entries sit inside any child gap. The
    /// reverse bound is what Lemma 1's skeleton-key disjointness needs;
    /// the downward-only [`CascadedTree::build`] does not provide it (a
    /// node with a tiny catalog would receive every skeleton tree's key on
    /// the same entry).
    pub fn build_bidir(tree: CatalogTree<K>, sample: usize) -> Self {
        Self::build_bidir_inner(tree, sample, None)
    }

    /// [`CascadedTree::build_bidir`] with EREW cost accounting (two
    /// level-synchronous sweeps instead of one).
    pub fn build_bidir_cost(tree: CatalogTree<K>, sample: usize, pram: &mut Pram) -> Self {
        Self::build_bidir_inner(tree, sample, Some(pram))
    }

    fn build_bidir_inner(tree: CatalogTree<K>, sample: usize, mut pram: Option<&mut Pram>) -> Self {
        assert!(sample >= 2, "sampling factor must be at least 2");
        assert!(
            sample > tree.max_degree() + 1,
            "bidirectional cascading needs sampling factor {} > degree {} + 1",
            sample,
            tree.max_degree()
        );
        let levels = tree.levels();
        // Pass 1 (bottom-up): B_v = C_v ∪ sample(B_children).
        let mut lists: Vec<Vec<K>> = vec![Vec::new(); tree.len()];
        for level in levels.iter().rev() {
            let mut level_ops = 0usize;
            for &id in level {
                let mut acc: Vec<K> = tree.catalog(id).to_vec();
                for &c in tree.children(id) {
                    let sampled: Vec<K> = lists[c.idx()]
                        .iter()
                        .skip(sample - 1)
                        .step_by(sample)
                        .copied()
                        .collect();
                    acc = fc_pram::primitives::merge_seq(&acc, &sampled);
                }
                acc.dedup();
                level_ops += acc.len();
                lists[id.idx()] = acc;
            }
            if let Some(pram) = pram.as_deref_mut() {
                let depth = usize::BITS - level_ops.max(1).leading_zeros();
                for _ in 0..depth {
                    pram.round(level_ops);
                }
            }
        }
        // Pass 2 (top-down): A_v = B_v ∪ sample(final A_parent).
        for level in levels.iter() {
            let mut level_ops = 0usize;
            for &id in level {
                if let Some(par) = tree.parent(id) {
                    let sampled: Vec<K> = lists[par.idx()]
                        .iter()
                        .skip(sample - 1)
                        .step_by(sample)
                        .copied()
                        .collect();
                    let mut acc = fc_pram::primitives::merge_seq(&lists[id.idx()], &sampled);
                    acc.dedup();
                    level_ops += acc.len();
                    lists[id.idx()] = acc;
                }
            }
            if let Some(pram) = pram.as_deref_mut() {
                let depth = usize::BITS - level_ops.max(1).leading_zeros();
                for _ in 0..depth {
                    pram.round(level_ops);
                }
            }
        }
        // Terminal +inf, exactly once, everywhere.
        for l in &mut lists {
            while l.last() == Some(&K::SUPREMUM) {
                l.pop();
            }
            l.push(K::SUPREMUM);
        }
        // Pass 3: native successors and downward bridges on the final lists.
        let mut bufs: Vec<NodeBuf<K>> = Vec::with_capacity(tree.len());
        for id in tree.ids() {
            let keys = lists[id.idx()].clone();
            let native = tree.catalog(id);
            let mut native_succ = Vec::with_capacity(keys.len());
            let mut j = 0usize;
            for &k in &keys {
                while j < native.len() && native[j] < k {
                    j += 1;
                }
                native_succ.push(j as u32);
            }
            let mut bridges = Vec::with_capacity(tree.children(id).len());
            for &c in tree.children(id) {
                let child_keys = &lists[c.idx()];
                let mut bj = 0usize;
                let mut bv = Vec::with_capacity(keys.len());
                for &k in &keys {
                    while bj < child_keys.len() && child_keys[bj] < k {
                        bj += 1;
                    }
                    debug_assert!(bj < child_keys.len());
                    bv.push(bj as u32);
                }
                bridges.push(bv);
            }
            bufs.push(NodeBuf {
                keys,
                native_succ,
                bridges,
            });
        }
        let arena = CascadeArena::publish(bufs);
        if let Some(pram) = pram {
            pram.round(arena.total_entries());
        }
        CascadedTree {
            tree,
            arena,
            sample,
        }
    }

    /// [`CascadedTree::try_build`] replayed under an access tracer: the
    /// same level-synchronous schedule, executed on the genuinely EREW
    /// round structure and reporting every logical access to `tr`.
    ///
    /// Per level (bottom-up), three phases:
    ///
    /// * `build/sample` — one round; each sampled child entry is read by
    ///   exactly one processor (a child has one parent) and copied to a
    ///   private staging cell `("stage", node)[i]`, while the native catalog
    ///   is gathered the same way — all cells distinct, so exclusive;
    /// * `build/merge` — Batcher bitonic-merge-network rounds over the
    ///   staging cells: each round is a set of disjoint compare-exchange
    ///   pairs, each touched by exactly one processor. Merges of different
    ///   nodes on the same level share rounds (that is the
    ///   level-synchronous claim). The CREW rank-by-binary-search merge
    ///   charged by [`CascadedTree::build_cost`] would *not* pass EREW —
    ///   the network is the exclusive schedule the paper's EREW
    ///   preprocessing claim (via Atallah–Cole–Goodrich) relies on;
    /// * `build/publish` — one round; processor `i` reads its own staging
    ///   cell and writes the node's augmented entry `("aug", node)[i]`, its
    ///   native successor `("nsucc", node)[i]`, and one bridge cell per
    ///   child slot (`("bridge", node * (d+1) + slot)[i]`, `d` = max
    ///   degree) — rank bookkeeping rides along with the merge records.
    ///
    /// The returned structure is bit-identical to [`CascadedTree::try_build`].
    pub fn try_build_traced<Tr: Tracer>(
        tree: CatalogTree<K>,
        sample: usize,
        tr: &mut Tr,
    ) -> Result<Self, FcError> {
        assert!(sample >= 2, "sampling factor must be at least 2");
        assert!(
            sample > tree.max_degree(),
            "sampling factor {} must exceed max degree {} for linear size",
            sample,
            tree.max_degree()
        );
        let slot_span = tree.max_degree() + 1;
        let mut nodes: Vec<Option<NodeBuf<K>>> = (0..tree.len()).map(|_| None).collect();
        let levels = tree.levels();
        for level in levels.iter().rev() {
            // Compute the level's nodes first; emission replays the access
            // schedule that produces exactly these results.
            let mut built: Vec<(NodeId, NodeBuf<K>)> = Vec::with_capacity(level.len());
            for &id in level {
                built.push((id, cascade_node(&tree, id, &nodes, sample)?));
            }
            if tr.live() {
                // Phase 1: sample children + gather native, one exclusive
                // round for the whole level.
                tr.phase("build/sample");
                let mut pid = 0usize;
                for &(id, _) in &built {
                    let stage = ("stage", id.idx());
                    let mut cursor = tree.catalog(id).len();
                    for (i, _) in tree.catalog(id).iter().enumerate() {
                        tr.read(pid, ("native", id.idx()), i);
                        tr.write(pid, stage, i);
                        pid += 1;
                    }
                    for &c in tree.children(id) {
                        let child_len = nodes[c.idx()].as_ref().map(|n| n.keys.len()).unwrap_or(0);
                        let mut pos = sample - 1;
                        while pos < child_len {
                            tr.read(pid, ("aug", c.idx()), pos);
                            tr.write(pid, stage, cursor);
                            cursor += 1;
                            pid += 1;
                            pos += sample;
                        }
                    }
                }
                tr.barrier();
                // Phase 2: bitonic merge networks, level-synchronous — the
                // r-th rounds of all nodes' networks coincide.
                tr.phase("build/merge");
                let schedules: Vec<(usize, MergeRounds)> = built
                    .iter()
                    .map(|&(id, _)| {
                        let mut rounds = Vec::new();
                        let mut acc = tree.catalog(id).len();
                        for &c in tree.children(id) {
                            let child_len =
                                nodes[c.idx()].as_ref().map(|n| n.keys.len()).unwrap_or(0);
                            let sampled = if child_len >= sample {
                                1 + (child_len - sample) / sample
                            } else {
                                0
                            };
                            if sampled > 0 {
                                bitonic_merge_rounds(acc + sampled, &mut rounds);
                                acc += sampled;
                            }
                        }
                        (id.idx(), rounds)
                    })
                    .collect();
                let depth = schedules.iter().map(|(_, r)| r.len()).max().unwrap_or(0);
                for r in 0..depth {
                    let mut pid = 0usize;
                    for (idx, rounds) in &schedules {
                        let stage = ("stage", *idx);
                        if let Some(pairs) = rounds.get(r) {
                            for &(a, b) in pairs {
                                tr.read(pid, stage, a);
                                tr.read(pid, stage, b);
                                tr.write(pid, stage, a);
                                tr.write(pid, stage, b);
                                pid += 1;
                            }
                        }
                    }
                    tr.barrier();
                }
                // Phase 3: publish — one processor per output entry.
                tr.phase("build/publish");
                let mut pid = 0usize;
                for (id, node) in &built {
                    let stage = ("stage", id.idx());
                    for i in 0..node.keys.len() {
                        tr.read(pid, stage, i);
                        tr.write(pid, ("aug", id.idx()), i);
                        tr.write(pid, ("nsucc", id.idx()), i);
                        for slot in 0..node.bridges.len() {
                            tr.write(pid, ("bridge", id.idx() * slot_span + slot), i);
                        }
                        pid += 1;
                    }
                }
                tr.barrier();
            }
            for (id, node) in built {
                nodes[id.idx()] = Some(node);
            }
        }
        let mut done = Vec::with_capacity(nodes.len());
        for (idx, n) in nodes.into_iter().enumerate() {
            done.push(n.ok_or(FcError::UnbuiltNode { node: idx as u32 })?);
        }
        Ok(CascadedTree {
            arena: CascadeArena::publish(done),
            tree,
            sample,
        })
    }

    fn build_inner(
        tree: CatalogTree<K>,
        sample: usize,
        mode: BuildMode,
        mut pram: Option<&mut Pram>,
    ) -> Result<Self, FcError> {
        assert!(sample >= 2, "sampling factor must be at least 2");
        assert!(
            sample > tree.max_degree(),
            "sampling factor {} must exceed max degree {} for linear size",
            sample,
            tree.max_degree()
        );
        let mut nodes: Vec<Option<NodeBuf<K>>> = (0..tree.len()).map(|_| None).collect();
        // Process levels bottom-up; within a level all nodes are independent.
        let levels = tree.levels();
        for level in levels.iter().rev() {
            let build_one = |&id: &NodeId| -> Result<(usize, NodeBuf<K>), FcError> {
                let node = cascade_node(&tree, id, &nodes, sample)?;
                Ok((id.idx(), node))
            };
            let built: Vec<(usize, NodeBuf<K>)> = match mode {
                BuildMode::Sequential => level.iter().map(build_one).collect::<Result<_, _>>()?,
                BuildMode::Parallel => level
                    .par_iter()
                    .map(build_one)
                    .collect::<Result<Vec<_>, _>>()?,
            };
            if let Some(pram) = pram.as_deref_mut() {
                // EREW cost of the level: all merges run concurrently;
                // depth = log of the largest merged list, ops per round =
                // total output size of the level.
                let level_ops: usize = built.iter().map(|(_, n)| n.keys.len()).sum();
                let max_len = built.iter().map(|(_, n)| n.keys.len()).max().unwrap_or(0);
                let depth = usize::BITS - max_len.leading_zeros();
                for _ in 0..depth {
                    pram.round(level_ops);
                }
            }
            for (idx, node) in built {
                nodes[idx] = Some(node);
            }
        }
        let mut done = Vec::with_capacity(nodes.len());
        for (idx, n) in nodes.into_iter().enumerate() {
            done.push(n.ok_or(FcError::UnbuiltNode { node: idx as u32 })?);
        }
        Ok(CascadedTree {
            arena: CascadeArena::publish(done),
            tree,
            sample,
        })
    }

    /// The underlying tree.
    #[inline]
    pub fn tree(&self) -> &CatalogTree<K> {
        &self.tree
    }

    /// The flat arena backing the structure (read-only; DESIGN.md §14).
    #[inline]
    pub fn arena(&self) -> &CascadeArena<K> {
        &self.arena
    }

    /// The sampling factor `s`.
    #[inline]
    pub fn sample_factor(&self) -> usize {
        self.sample
    }

    /// The fan-out bound `b` of Property 1: with sampling factor `s`, the
    /// true answer is within `b = s - 1` back-steps of the bridge target.
    #[inline]
    pub fn fanout_bound(&self) -> usize {
        self.sample - 1
    }

    /// Augmented node data for `id`, as a borrowed arena view.
    #[inline]
    pub fn aug(&self, id: NodeId) -> CascadedNodeRef<'_, K> {
        self.arena.node(id)
    }

    /// Mutable augmented node data — a fault-injection hook for tests and
    /// robustness experiments (corrupting bridges/keys must be *detected*
    /// by [`crate::invariants::check_all`] and *repaired* by the searches'
    /// coverage fallbacks). Cell values can be rewritten; the flat spans
    /// are fixed, so lengths cannot change. Not part of the stable API.
    #[doc(hidden)]
    pub fn aug_mut_for_fault_injection(&mut self, id: NodeId) -> CascadedNodeMut<'_, K> {
        self.arena.node_mut(id)
    }

    /// Augmented catalog keys of `id`.
    #[inline]
    pub fn keys(&self, id: NodeId) -> &[K] {
        self.arena.keys_of(id)
    }

    /// Total number of augmented entries over all nodes (the structure's
    /// space, up to the constant per-entry field count). Lemma-2-style
    /// linearity of the *cooperative* structure is measured on top of this.
    pub fn total_aug_size(&self) -> usize {
        self.arena.total_entries()
    }

    /// Locate `y` in the augmented catalog of `id`: smallest augmented
    /// index with `keys[i] >= y`, via the branchless shared probe. Always
    /// exists because of the terminal `+∞`.
    #[inline]
    pub fn find_aug(&self, id: NodeId, y: K) -> usize {
        let keys = self.arena.keys_of(id);
        let i = lower_bound(keys, &y);
        debug_assert!(i < keys.len(), "terminal +inf guarantees a hit");
        i
    }

    /// Given the augmented location `aug_idx` of `y` at `parent`, locate `y`
    /// in child slot `slot` of `parent` via the bridge plus a back-walk of
    /// at most `b = s - 1` steps (Property 1). Returns the child's augmented
    /// index and the number of walk steps taken (for cost accounting).
    #[inline]
    pub fn descend(&self, parent: NodeId, slot: usize, aug_idx: usize, y: K) -> (usize, usize) {
        let child = self.tree.children(parent)[slot];
        let child_keys = self.arena.keys_of(child);
        let mut j = self.arena.bridge_at(parent, slot, aug_idx) as usize;
        let mut walked = 0usize;
        while j > 0 && child_keys[j - 1] >= y {
            j -= 1;
            walked += 1;
        }
        debug_assert!(walked <= self.fanout_bound(), "fan-out property violated");
        (j, walked)
    }

    /// Audited variant of [`descend`](Self::descend) for searches that must
    /// never return a silently wrong answer on a corrupted structure.
    ///
    /// [`descend`](Self::descend) corrects bridge *overshoot* by back-walking,
    /// but a bridge corrupted to *undershoot* (point before the true lower
    /// bound) produces a wrong child position with no visible symptom. Here we
    /// verify all three failure modes — bridge index out of range, back-walk
    /// longer than the fan-out bound `b`, and a landing position whose key is
    /// still `< y` — and return a blame coordinate instead of a bad position.
    pub fn checked_descend(
        &self,
        parent: NodeId,
        slot: usize,
        aug_idx: usize,
        y: K,
    ) -> Result<(usize, usize), FcError> {
        let blame = FcError::CorruptBridge {
            node: parent.0,
            slot,
            entry: aug_idx,
        };
        let children = self.tree.children(parent);
        let child = *children.get(slot).ok_or(blame)?;
        let child_keys = self.arena.node_get(child).ok_or(blame)?.keys;
        let bridge_row = self
            .arena
            .node_get(parent)
            .and_then(|n| n.bridges.get(slot))
            .ok_or(blame)?;
        let mut j = *bridge_row.get(aug_idx).ok_or(blame)? as usize;
        if j >= child_keys.len() {
            return Err(blame);
        }
        let mut walked = 0usize;
        while j > 0 && child_keys.get(j - 1).is_some_and(|&k| k >= y) {
            j -= 1;
            walked += 1;
            if walked > self.fanout_bound() {
                return Err(blame);
            }
        }
        // Undershoot: the landing key is still below y, so `j` is not the
        // lower bound — `descend` would have silently returned it.
        match child_keys.get(j) {
            Some(&k) if k >= y => Ok((j, walked)),
            _ => Err(blame),
        }
    }

    /// Convert an augmented location at `id` into the native `find(y, v)`
    /// answer.
    #[inline]
    pub fn native_result(&self, id: NodeId, aug_idx: usize) -> Find {
        Find {
            native_idx: self.arena.native_succ_at(id, aug_idx),
        }
    }

    /// Closed-form depth estimate for the pipelined Atallah–Cole–Goodrich
    /// construction on this instance: `3 * height + O(log largest merge)`.
    /// The schedule itself is *executed* by [`crate::pipeline`]; this
    /// estimate is kept as a cheap analytic cross-check.
    pub fn pipelined_depth_estimate(&self) -> u64 {
        let h = self.tree.height() as u64;
        let max_aug = self.arena.max_span().max(1);
        3 * h + (usize::BITS - max_aug.leading_zeros()) as u64
    }
}

#[derive(Clone, Copy, PartialEq)]
enum BuildMode {
    Sequential,
    Parallel,
}

/// Build one node's augmented catalog + bridges from its (already built)
/// children.
fn cascade_node<K: CatalogKey>(
    tree: &CatalogTree<K>,
    id: NodeId,
    nodes: &[Option<NodeBuf<K>>],
    sample: usize,
) -> Result<NodeBuf<K>, FcError> {
    let native = tree.catalog(id);
    let children = tree.children(id);

    // Gather the sampled child lists (every `sample`-th entry).
    let mut lists: Vec<Vec<K>> = Vec::with_capacity(children.len() + 1);
    lists.push(native.to_vec());
    for &c in children {
        let child = nodes[c.idx()]
            .as_ref()
            .ok_or(FcError::UnbuiltNode { node: c.0 })?;
        lists.push(
            child
                .keys
                .iter()
                .skip(sample - 1)
                .step_by(sample)
                .copied()
                .collect(),
        );
    }
    // k-way merge (k = degree + 1 <= sample, small).
    let mut keys = kway_merge(&lists);
    // Exactly one terminal SUPREMUM.
    while keys.last() == Some(&K::SUPREMUM) {
        keys.pop();
    }
    keys.push(K::SUPREMUM);

    // native_succ: two-pointer walk over (keys, native).
    let mut native_succ = Vec::with_capacity(keys.len());
    let mut j = 0usize;
    for &k in &keys {
        while j < native.len() && native[j] < k {
            j += 1;
        }
        native_succ.push(j as u32);
    }

    // bridges: two-pointer walk over (keys, child.keys) per child.
    let mut bridges = Vec::with_capacity(children.len());
    for &c in children {
        let child_keys = &nodes[c.idx()]
            .as_ref()
            .ok_or(FcError::UnbuiltNode { node: c.0 })?
            .keys;
        let mut bj = 0usize;
        let mut bv = Vec::with_capacity(keys.len());
        for &k in &keys {
            while bj < child_keys.len() && child_keys[bj] < k {
                bj += 1;
            }
            debug_assert!(
                bj < child_keys.len(),
                "child terminal +inf guarantees a hit"
            );
            bv.push(bj as u32);
        }
        bridges.push(bv);
    }

    Ok(NodeBuf {
        keys,
        native_succ,
        bridges,
    })
}

/// A merge network schedule: each round is a set of pairwise-disjoint
/// compare-exchange pairs.
type MergeRounds = Vec<Vec<(usize, usize)>>;

/// Append the rounds of a Batcher bitonic merge network over `len` cells
/// (padded virtually to a power of two; comparators touching padding are
/// dropped). Each round is a set of pairwise-disjoint compare-exchange
/// pairs — the EREW-exclusive merge schedule replayed by
/// [`CascadedTree::try_build_traced`].
fn bitonic_merge_rounds(len: usize, rounds: &mut MergeRounds) {
    if len < 2 {
        return;
    }
    let m = len.next_power_of_two();
    let mut stride = m / 2;
    while stride >= 1 {
        let mut pairs = Vec::new();
        for i in 0..m {
            if i & stride == 0 && (i | stride) < len {
                pairs.push((i, i | stride));
            }
        }
        if !pairs.is_empty() {
            rounds.push(pairs);
        }
        stride /= 2;
    }
}

/// Merge `k` sorted lists (small `k`): repeated pairwise merge.
fn kway_merge<K: CatalogKey>(lists: &[Vec<K>]) -> Vec<K> {
    let mut acc: Vec<K> = Vec::new();
    for l in lists {
        acc = fc_pram::primitives::merge_seq(&acc, l);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, SizeDist};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_tree() -> CatalogTree<i64> {
        CatalogTree::from_parents(
            vec![None, Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)],
            vec![
                vec![50],
                vec![10, 30, 70],
                vec![20, 60],
                vec![5, 15, 25, 35, 45],
                vec![55, 65],
                vec![1, 2, 3],
                vec![80, 90],
            ],
        )
    }

    #[test]
    fn augmented_catalogs_end_with_supremum() {
        let fc = CascadedTree::build(sample_tree(), 4);
        for id in fc.tree().ids() {
            assert_eq!(*fc.keys(id).last().unwrap(), i64::SUPREMUM);
            assert!(fc.keys(id).windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn arena_spans_tile_the_flat_arrays() {
        let fc = CascadedTree::build(sample_tree(), 4);
        let a = fc.arena();
        // Offset tables are monotone and cover the flat arrays exactly.
        assert_eq!(a.key_off.len(), fc.tree().len() + 1);
        assert_eq!(a.bridge_off.len(), fc.tree().len() + 1);
        assert!(a.key_off.windows(2).all(|w| w[0] < w[1]), "t_v >= 1");
        assert!(a.bridge_off.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*a.key_off.last().unwrap() as usize, a.keys.len());
        assert_eq!(a.native_succ.len(), a.keys.len());
        assert_eq!(*a.bridge_off.last().unwrap() as usize, a.bridges.len());
        // Per node: bridge block = degree * t_v, rows in child order.
        for id in fc.tree().ids() {
            let t = fc.keys(id).len();
            let block = (a.bridge_off[id.idx() + 1] - a.bridge_off[id.idx()]) as usize;
            assert_eq!(block, fc.tree().children(id).len() * t);
            assert_eq!(fc.aug(id).bridges.len(), fc.tree().children(id).len());
            for row in fc.aug(id).bridges.iter() {
                assert_eq!(row.len(), t);
            }
        }
    }

    #[test]
    fn find_aug_plus_native_succ_equals_direct_lower_bound() {
        let fc = CascadedTree::build(sample_tree(), 4);
        for id in fc.tree().ids() {
            let native = fc.tree().catalog(id).to_vec();
            for y in -2..100 {
                let aug = fc.find_aug(id, y);
                let got = fc.native_result(id, aug).native_idx as usize;
                let want = lower_bound(&native, &y);
                assert_eq!(got, want, "node {id:?} y {y}");
            }
        }
    }

    #[test]
    fn descend_finds_childs_lower_bound() {
        let fc = CascadedTree::build(sample_tree(), 4);
        let t = fc.tree();
        for id in t.ids() {
            for (slot, &child) in t.children(id).iter().enumerate() {
                for y in -2..100 {
                    let pa = fc.find_aug(id, y);
                    let (ca, walked) = fc.descend(id, slot, pa, y);
                    assert_eq!(ca, fc.find_aug(child, y), "node {id:?} slot {slot} y {y}");
                    assert!(walked <= fc.fanout_bound());
                }
            }
        }
    }

    #[test]
    fn sequential_and_parallel_builds_agree() {
        let mut rng = SmallRng::seed_from_u64(17);
        let tree = gen::balanced_binary(6, 3000, SizeDist::Uniform, &mut rng);
        let a = CascadedTree::build(tree.clone(), 4);
        let b = CascadedTree::build_par(tree, 4);
        assert_eq!(a.arena(), b.arena(), "arenas must be bit-identical");
        for id in a.tree().ids() {
            assert_eq!(a.keys(id), b.keys(id));
            assert_eq!(a.aug(id).native_succ, b.aug(id).native_succ);
            assert_eq!(a.aug(id).bridges, b.aug(id).bridges);
        }
    }

    #[test]
    fn traced_build_matches_untraced_and_is_erew_clean() {
        use fc_pram::shadow::ShadowMem;
        use fc_pram::Model;
        let mut rng = SmallRng::seed_from_u64(19);
        for (h, total) in [(4u32, 600usize), (6, 2500)] {
            let tree = gen::balanced_binary(h, total, SizeDist::Uniform, &mut rng);
            let plain = CascadedTree::build(tree.clone(), 4);
            let mut sh = ShadowMem::new(Model::Erew);
            let traced = CascadedTree::try_build_traced(tree, 4, &mut sh).unwrap();
            assert!(sh.finish(), "violations: {:?}", &sh.violations()[..1]);
            assert_eq!(plain.arena(), traced.arena());
            for id in plain.tree().ids() {
                assert_eq!(plain.keys(id), traced.keys(id));
                assert_eq!(plain.aug(id).native_succ, traced.aug(id).native_succ);
                assert_eq!(plain.aug(id).bridges, traced.aug(id).bridges);
            }
            // Sanity: every claimed phase actually ran.
            let phases: Vec<&str> = sh.phase_stats().iter().map(|&(p, _)| p).collect();
            assert!(phases.contains(&"build/sample"));
            assert!(phases.contains(&"build/merge"));
            assert!(phases.contains(&"build/publish"));
        }
    }

    #[test]
    fn bitonic_rounds_are_disjoint_within_a_round() {
        for len in [2usize, 3, 7, 8, 33, 100] {
            let mut rounds = Vec::new();
            bitonic_merge_rounds(len, &mut rounds);
            assert!(!rounds.is_empty());
            for pairs in &rounds {
                let mut seen = std::collections::HashSet::new();
                for &(a, b) in pairs {
                    assert!(a < len && b < len);
                    assert!(seen.insert(a), "index {a} reused in a round");
                    assert!(seen.insert(b), "index {b} reused in a round");
                }
            }
        }
    }

    #[test]
    fn cost_build_charges_polylog_depth() {
        let mut rng = SmallRng::seed_from_u64(23);
        let tree = gen::balanced_binary(8, 10_000, SizeDist::Uniform, &mut rng);
        let n = tree.total_catalog_size();
        let procs = (n / (usize::BITS - n.leading_zeros()) as usize).max(1);
        let mut pram = Pram::new(procs, fc_pram::Model::Erew);
        let fc = CascadedTree::build_cost(tree, 4, &mut pram);
        // Depth should be O(log^2 n): generously, <= 4 * log^2 n.
        let log_n = (usize::BITS - n.leading_zeros()) as u64;
        assert!(
            pram.steps() <= 4 * log_n * log_n,
            "steps {} log^2 bound {}",
            pram.steps(),
            4 * log_n * log_n
        );
        // Work must be linear-ish: O(n log n) at worst for this schedule.
        assert!(pram.work() <= (4 * n as u64) * log_n);
        assert!(fc.total_aug_size() >= n);
    }

    #[test]
    fn total_aug_size_is_linear() {
        let mut rng = SmallRng::seed_from_u64(29);
        for total in [1000usize, 4000, 16_000] {
            let tree = gen::balanced_binary(9, total, SizeDist::Uniform, &mut rng);
            let nodes = tree.len();
            let fc = CascadedTree::build(tree, 4);
            // |A| <= 2n + 2 * #nodes (terminal entries + geometric series).
            assert!(
                fc.total_aug_size() <= 2 * total + 2 * nodes,
                "aug {} vs bound {}",
                fc.total_aug_size(),
                2 * total + 2 * nodes
            );
        }
    }

    #[test]
    fn skewed_catalogs_still_work() {
        let mut rng = SmallRng::seed_from_u64(31);
        let tree = gen::balanced_binary(6, 5000, SizeDist::SingleHeavy(0.7), &mut rng);
        let fc = CascadedTree::build(tree, 4);
        let t = fc.tree();
        for leaf in t.leaves().into_iter().take(8) {
            let path = t.path_from_root(leaf);
            for y in [-5i64, 0, 777, 40_000, 79_999, 80_000] {
                let mut aug = fc.find_aug(t.root(), y);
                let mut prev = t.root();
                for &nid in &path[1..] {
                    let slot = t.child_slot(prev, nid);
                    aug = fc.descend(prev, slot, aug, y).0;
                    prev = nid;
                    let got = fc.native_result(nid, aug).native_idx as usize;
                    assert_eq!(got, lower_bound(t.catalog(nid), &y));
                }
            }
        }
    }

    #[test]
    fn single_node_tree() {
        let tree = CatalogTree::from_parents(vec![None], vec![vec![3i64, 9]]);
        let fc = CascadedTree::build(tree, 2);
        assert_eq!(fc.find_aug(NodeId(0), 5), 1);
        assert_eq!(fc.native_result(NodeId(0), 1).native_idx, 1);
        assert_eq!(
            fc.native_result(NodeId(0), fc.find_aug(NodeId(0), 100))
                .native_idx,
            2
        );
    }

    #[test]
    fn empty_catalog_nodes_get_terminal_only_plus_samples() {
        let tree = CatalogTree::from_parents(
            vec![None, Some(0)],
            vec![Vec::<i64>::new(), (0..40).map(|i| i * 2).collect()],
        );
        let fc = CascadedTree::build(tree, 4);
        // Root native is empty; aug must still contain child samples + SUP.
        assert!(fc.keys(NodeId(0)).len() > 1);
        assert_eq!(
            fc.native_result(NodeId(0), fc.find_aug(NodeId(0), 10))
                .native_idx,
            0
        );
    }

    #[test]
    fn mut_view_edits_land_in_the_arena() {
        let mut fc = CascadedTree::build(sample_tree(), 4);
        let root = fc.tree().root();
        let before = fc.aug(root).bridges[0][1];
        {
            let mut aug = fc.aug_mut_for_fault_injection(root);
            aug.bridges[0][1] = before + 1;
            let row = aug.bridges.get_mut(0).unwrap();
            row[2] = 0;
        }
        assert_eq!(fc.aug(root).bridges[0][1], before + 1);
        assert_eq!(fc.aug(root).bridges[0][2], 0);
        // Out-of-range slots are None, mirrored by the shared view.
        assert!(fc.aug(root).bridges.get(99).is_none());
        let mut aug = fc.aug_mut_for_fault_injection(root);
        assert!(aug.bridges.get_mut(99).is_none());
    }

    #[test]
    fn bidir_build_searches_correctly() {
        let mut rng = SmallRng::seed_from_u64(37);
        let tree = gen::balanced_binary(7, 6000, SizeDist::Uniform, &mut rng);
        let fc = CascadedTree::build_bidir(tree, 4);
        let t = fc.tree();
        for leaf in t.leaves().into_iter().take(6) {
            let path = t.path_from_root(leaf);
            for y in [-3i64, 0, 500, 47_000, 95_999, 96_000] {
                let mut aug = fc.find_aug(t.root(), y);
                let mut prev = t.root();
                for &nid in &path[1..] {
                    let slot = t.child_slot(prev, nid);
                    aug = fc.descend(prev, slot, aug, y).0;
                    prev = nid;
                    assert_eq!(
                        fc.native_result(nid, aug).native_idx as usize,
                        lower_bound(t.catalog(nid), &y)
                    );
                }
            }
        }
    }

    #[test]
    fn bidir_reverse_gap_bound_holds() {
        // The property Lemma 1 needs: at most s - 1 parent augmented
        // entries lie strictly inside any child augmented gap, i.e. at most
        // s parent entries bridge to the same child entry.
        let mut rng = SmallRng::seed_from_u64(41);
        let tree = gen::balanced_binary(7, 8000, SizeDist::SingleHeavy(0.8), &mut rng);
        let fc = CascadedTree::build_bidir(tree, 4);
        let t = fc.tree();
        for v in t.ids() {
            for (slot, _) in t.children(v).iter().enumerate() {
                let bridges = &fc.aug(v).bridges[slot];
                let mut run = 1usize;
                for w in bridges.windows(2) {
                    if w[0] == w[1] {
                        run += 1;
                        assert!(
                            run <= fc.sample_factor(),
                            "{run} parent entries bridge to one child entry at {v:?}"
                        );
                    } else {
                        run = 1;
                    }
                }
            }
        }
    }

    #[test]
    fn bidir_size_stays_linear() {
        let mut rng = SmallRng::seed_from_u64(43);
        for total in [2000usize, 8000, 32_000] {
            let tree = gen::balanced_binary(9, total, SizeDist::Uniform, &mut rng);
            let nodes = tree.len();
            let fc = CascadedTree::build_bidir(tree, 4);
            assert!(
                fc.total_aug_size() <= 3 * total + 3 * nodes,
                "bidir aug {} vs bound {}",
                fc.total_aug_size(),
                3 * total + 3 * nodes
            );
        }
    }

    #[test]
    #[should_panic(expected = "must exceed max degree")]
    fn sample_factor_must_exceed_degree() {
        let mut rng = SmallRng::seed_from_u64(1);
        let tree = gen::dary(4, 2, 100, &mut rng);
        let _ = CascadedTree::build(tree, 4);
    }
}
