//! Criterion wall-clock benchmarks for Theorems 4 and 5 (E-T4-planar /
//! E-T5-spatial): point-location query latency across locators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_coop::ParamMode;
use fc_geom::cooploc::locate_coop;
use fc_geom::septree::{locate_binary_per_node, locate_sequential, SeparatorTree};
use fc_geom::spatial::{
    locate_spatial_coop, locate_spatial_sequential, SpatialComplex, SpatialLocator, SpatialParams,
};
use fc_geom::subdivision::{MonotoneSubdivision, SubdivisionParams};
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_planar(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(11);
    let sub = MonotoneSubdivision::generate(
        SubdivisionParams {
            regions: 2048,
            strips: 32,
            stick: 0.35,
            detach: 0.45,
        },
        &mut rng,
    );
    let t = SeparatorTree::build(sub, ParamMode::Auto);
    let queries: Vec<(f64, f64)> = (0..64).map(|_| t.sub.random_query(&mut rng)).collect();

    let mut g = c.benchmark_group("planar_point_location");
    g.bench_function("binary_per_node", |b| {
        b.iter(|| {
            for &(x, y) in &queries {
                std::hint::black_box(locate_binary_per_node(&t, x, y, None));
            }
        })
    });
    g.bench_function("bridged_sequential", |b| {
        b.iter(|| {
            for &(x, y) in &queries {
                std::hint::black_box(locate_sequential(&t, x, y, None));
            }
        })
    });
    for p in [1usize << 14, 1 << 24] {
        g.bench_with_input(BenchmarkId::new("coop", p), &p, |b, &p| {
            b.iter(|| {
                for &(x, y) in &queries {
                    let mut pram = Pram::new(p, Model::Crew);
                    std::hint::black_box(locate_coop(&t, x, y, &mut pram));
                }
            })
        });
    }
    g.finish();
}

fn bench_spatial(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(13);
    let complex = SpatialComplex::generate(
        SpatialParams {
            cells: 64,
            footprint: SubdivisionParams {
                regions: 64,
                strips: 12,
                stick: 0.4,
                detach: 0.4,
            },
            coincide: 0.3,
        },
        &mut rng,
    );
    let loc = SpatialLocator::build(complex, ParamMode::Auto);
    let queries: Vec<(f64, f64, f64)> = (0..32)
        .map(|_| loc.complex.random_query(&mut rng))
        .collect();

    let mut g = c.benchmark_group("spatial_point_location");
    g.bench_function("sequential", |b| {
        b.iter(|| {
            for &(x, y, z) in &queries {
                let mut pram = Pram::new(1, Model::Crew);
                std::hint::black_box(locate_spatial_sequential(&loc, x, y, z, &mut pram));
            }
        })
    });
    g.bench_function("coop_p_2e20", |b| {
        b.iter(|| {
            for &(x, y, z) in &queries {
                let mut pram = Pram::new(1 << 20, Model::Crew);
                std::hint::black_box(locate_spatial_coop(&loc, x, y, z, &mut pram));
            }
        })
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_planar, bench_spatial
}
criterion_main!(benches);
