//! Criterion wall-clock benchmarks for Theorem 6 / Corollary 2
//! (E-T6-segint / E-T6-range / E-T6-enclose / E-C2-3d).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_coop::ParamMode;
use fc_pram::{Model, Pram};
use fc_retrieval::enclosure::{random_rects, PointEnclosure};
use fc_retrieval::range2d::{random_points, RangeTree2D, Rect};
use fc_retrieval::range3d::{random_points3, Box3, RangeTree3D};
use fc_retrieval::segint::{random_segments, HQuery, SegmentIntersection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_segint(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(21);
    let s = SegmentIntersection::build(random_segments(10_000, 100_000, &mut rng), ParamMode::Auto);
    let queries: Vec<HQuery> = (0..64)
        .map(|_| {
            let x0 = rng.gen_range(0..100_000);
            HQuery {
                y: rng.gen_range(0..100_000),
                x_lo: x0,
                x_hi: x0 + 5000,
            }
        })
        .collect();
    let mut g = c.benchmark_group("segment_intersection");
    for (name, direct) in [("direct", true), ("indirect", false)] {
        g.bench_with_input(BenchmarkId::new(name, 10_000), &direct, |b, &direct| {
            b.iter(|| {
                for &q in &queries {
                    let mut pram =
                        Pram::new(1 << 16, if direct { Model::Crew } else { Model::Crcw });
                    std::hint::black_box(s.query_coop(q, direct, &mut pram));
                }
            })
        });
    }
    g.finish();
}

fn bench_range2d(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(23);
    let t = RangeTree2D::build(random_points(8192, 1 << 20, &mut rng), ParamMode::Auto);
    let queries: Vec<Rect> = (0..64)
        .map(|_| {
            let (a, b) = (rng.gen_range(0i64..1 << 20), rng.gen_range(0i64..1 << 20));
            let (c_, d) = (rng.gen_range(0i64..1 << 20), rng.gen_range(0i64..1 << 20));
            Rect {
                x1: a.min(b),
                x2: a.max(b),
                y1: c_.min(d),
                y2: c_.max(d),
            }
        })
        .collect();
    c.bench_function("range2d_query", |b| {
        b.iter(|| {
            for &q in &queries {
                let mut pram = Pram::new(1 << 16, Model::Crew);
                std::hint::black_box(t.query_coop(q, false, &mut pram));
            }
        })
    });
}

fn bench_enclosure_and_3d(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(25);
    let pe = PointEnclosure::build(random_rects(5000, 100_000, &mut rng));
    c.bench_function("point_enclosure_query", |b| {
        b.iter(|| {
            for _ in 0..32 {
                let (x, y) = (rng.gen_range(0..100_000), rng.gen_range(0..100_000));
                let mut pram = Pram::new(1 << 16, Model::Crew);
                std::hint::black_box(pe.query_coop(x, y, &mut pram));
            }
        })
    });
    let t3 = RangeTree3D::build(random_points3(512, 1 << 18, &mut rng), ParamMode::Auto);
    c.bench_function("range3d_query", |b| {
        b.iter(|| {
            for _ in 0..16 {
                let mut dim = || {
                    let (a, b) = (rng.gen_range(0i64..1 << 18), rng.gen_range(0i64..1 << 18));
                    (a.min(b), a.max(b))
                };
                let q = Box3 {
                    x: dim(),
                    y: dim(),
                    z: dim(),
                };
                let mut pram = Pram::new(1 << 16, Model::Crew);
                std::hint::black_box(t3.query_coop(q, &mut pram));
            }
        })
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_segint, bench_range2d, bench_enclosure_and_3d
}
criterion_main!(benches);
