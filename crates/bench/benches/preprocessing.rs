//! Criterion benchmarks for E-T1-prep: sequential, rayon-parallel, and
//! bidirectional cascade construction, plus full `T'` preprocessing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_catalog::gen::{self, SizeDist};
use fc_catalog::CascadedTree;
use fc_coop::{CoopStructure, ParamMode};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_cascade_builds(c: &mut Criterion) {
    let mut g = c.benchmark_group("cascade_build");
    for exp in [14u32, 16] {
        let n = 1usize << exp;
        let mut rng = SmallRng::seed_from_u64(exp as u64);
        let tree = gen::balanced_binary(exp - 4, n, SizeDist::Uniform, &mut rng);
        g.bench_with_input(BenchmarkId::new("sequential", n), &tree, |b, tree| {
            b.iter(|| std::hint::black_box(CascadedTree::build(tree.clone(), 4)))
        });
        g.bench_with_input(BenchmarkId::new("rayon_levels", n), &tree, |b, tree| {
            b.iter(|| std::hint::black_box(CascadedTree::build_par(tree.clone(), 4)))
        });
        g.bench_with_input(BenchmarkId::new("bidirectional", n), &tree, |b, tree| {
            b.iter(|| std::hint::black_box(CascadedTree::build_bidir(tree.clone(), 4)))
        });
    }
    g.finish();
}

fn bench_full_preprocess(c: &mut Criterion) {
    let mut g = c.benchmark_group("coop_preprocess");
    g.sample_size(10);
    for exp in [14u32] {
        let n = 1usize << exp;
        let mut rng = SmallRng::seed_from_u64(100 + exp as u64);
        let tree = gen::balanced_binary(exp - 4, n, SizeDist::Uniform, &mut rng);
        for mode in [ParamMode::Auto, ParamMode::Theory] {
            g.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), n),
                &tree,
                |b, tree| {
                    b.iter(|| std::hint::black_box(CoopStructure::preprocess(tree.clone(), mode)))
                },
            );
        }
    }
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_cascade_builds, bench_full_preprocess
}
criterion_main!(benches);
