//! Criterion wall-clock benchmarks for Theorem 1 (E-T1-explicit /
//! E-T1-implicit): cooperative vs sequential searches on real hardware.
//!
//! The PRAM *step* measurements live in the harness; these benches confirm
//! that the implementation itself is fast and that the step reductions are
//! not bought with pathological constant factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fc_catalog::gen::{self, SizeDist};
use fc_catalog::search::{search_path_fc, search_path_naive};
use fc_coop::explicit::coop_search_explicit;
use fc_coop::implicit::{coop_search_implicit, ConsistentLeafOracle, LeafOracleAdapter};
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_explicit(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let n = 1usize << 16;
    let tree = gen::balanced_binary(12, n, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let leaf = gen::random_leaf(st.tree(), &mut rng);
    let path = st.tree().path_from_root(leaf);
    let ys: Vec<i64> = (0..64).map(|_| rng.gen_range(0..(n as i64 * 16))).collect();

    let mut g = c.benchmark_group("explicit_search");
    g.bench_function("naive_per_node", |b| {
        b.iter(|| {
            for &y in &ys {
                std::hint::black_box(search_path_naive(st.tree(), &path, y, None));
            }
        })
    });
    g.bench_function("sequential_fc", |b| {
        b.iter(|| {
            for &y in &ys {
                std::hint::black_box(search_path_fc(st.cascade(), &path, y, None));
            }
        })
    });
    for p in [1usize << 12, 1 << 20, 1 << 30] {
        g.bench_with_input(BenchmarkId::new("coop", p), &p, |b, &p| {
            b.iter(|| {
                for &y in &ys {
                    let mut pram = Pram::new(p, Model::Crew);
                    std::hint::black_box(coop_search_explicit(&st, &path, y, &mut pram));
                }
            })
        });
    }
    g.finish();
}

fn bench_implicit(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let n = 1usize << 15;
    let tree = gen::balanced_binary(11, n, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let target = gen::random_leaf(st.tree(), &mut rng);
    let oracle = ConsistentLeafOracle::new(st.tree(), target);
    let ys: Vec<i64> = (0..32).map(|_| rng.gen_range(0..(n as i64 * 16))).collect();

    let mut g = c.benchmark_group("implicit_search");
    for p in [1usize, 1 << 20] {
        g.bench_with_input(BenchmarkId::new("coop", p), &p, |b, &p| {
            let adapter = LeafOracleAdapter::new(st.tree(), &oracle);
            b.iter(|| {
                for &y in &ys {
                    let mut pram = Pram::new(p, Model::Crew);
                    std::hint::black_box(coop_search_implicit(&st, &adapter, y, &mut pram));
                }
            })
        });
    }
    g.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    // Inter-query parallelism on real cores: rayon batch vs sequential
    // loop over the same queries.
    let mut rng = SmallRng::seed_from_u64(3);
    let n = 1usize << 16;
    let tree = gen::balanced_binary(12, n, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let queries: Vec<(fc_catalog::NodeId, i64)> = (0..512)
        .map(|_| {
            (
                gen::random_leaf(st.tree(), &mut rng),
                rng.gen_range(0..(n as i64 * 16)),
            )
        })
        .collect();
    let mut g = c.benchmark_group("batch_512_queries");
    g.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(fc_coop::batch::explicit_batch_seq(&st, &queries, 1 << 16)))
    });
    g.bench_function("rayon", |b| {
        b.iter(|| std::hint::black_box(fc_coop::batch::explicit_batch(&st, &queries, 1 << 16)))
    });
    g.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_explicit, bench_implicit, bench_batch_throughput
}
criterion_main!(benches);
