//! Bench regression gate: compare committed snapshots against freshly
//! generated ones and fail (non-zero exit) when a throughput-class metric
//! regresses by more than `FC_BENCH_TOLERANCE` (fractional, default 0.30).
//!
//! ```text
//! cargo run -p fc-bench --release --bin compare -- <committed-dir> <fresh-dir>
//! FC_BENCH_TOLERANCE=0.5 cargo run -p fc-bench --release --bin compare -- . bench-out
//! ```
//!
//! Two field classes gate, sharing one tolerance:
//!
//! * **throughput** (`search_qps` for the core microbench,
//!   `throughput_qps` for serve/shard, `wal_ops_per_s` for store) —
//!   fails when the fresh value drops below `base * (1 - tol)`;
//! * **tail latency** (`descent_ns` for core, `p99_us` for serve/shard;
//!   the store snapshot has no latency field) — fails when the fresh
//!   value rises above
//!   `base * (1 + tol)`, so a change that keeps aggregate throughput but
//!   stalls the p99 (a held lock, an fsync on the query path) still
//!   fails the gate.
//!
//! Both are robust to core-count skew in the same direction as the gate
//! (fewer cores only ever makes it stricter), and the tolerance absorbs
//! runner jitter. p50 and build times are printed for visibility but not
//! gated.
//!
//! A snapshot file present on the fresh side but absent from the
//! committed baseline is a **note, not a failure**: a newly added
//! benchmark has nothing to regress against until its baseline lands.
//! The reverse (committed but not regenerated) still fails.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Minimal parser for the flat `{"k": v, ...}` JSON our snapshots emit:
/// one object, string keys, numeric or string values, no nesting. Numeric
/// fields come back in the map; string fields (e.g. `name`) are skipped.
fn parse_flat_numbers(text: &str) -> Option<BTreeMap<String, f64>> {
    let body = text.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut out = BTreeMap::new();
    for pair in split_top_level(body) {
        let (k, v) = pair.split_once(':')?;
        let key = k.trim().strip_prefix('"')?.strip_suffix('"')?.to_string();
        let val = v.trim();
        if val.starts_with('"') {
            continue; // string field: not comparable
        }
        out.insert(key, val.parse::<f64>().ok()?);
    }
    Some(out)
}

/// Split a flat JSON object body on commas, respecting quoted strings
/// (our values never contain escaped quotes).
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    for (i, c) in body.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if !body[start..].trim().is_empty() {
        parts.push(&body[start..]);
    }
    parts
}

fn load(dir: &Path, file: &str) -> Result<BTreeMap<String, f64>, String> {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_flat_numbers(&text).ok_or_else(|| format!("cannot parse {}", path.display()))
}

fn tolerance() -> f64 {
    std::env::var("FC_BENCH_TOLERANCE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|t| (0.0..1.0).contains(t))
        .unwrap_or(0.30)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let (committed, fresh): (PathBuf, PathBuf) = match (args.next(), args.next()) {
        (Some(a), Some(b)) => (a.into(), b.into()),
        _ => {
            eprintln!("usage: compare <committed-dir> <fresh-dir>");
            return ExitCode::FAILURE;
        }
    };
    let tol = tolerance();
    // (file, throughput field, workload-size field, p99 latency field).
    // Throughput under-measures on a smaller workload (fixed startup
    // costs amortize over fewer items), so a fresh run with a smaller
    // workload than the baseline prints a notice instead of failing —
    // CI generates both sides at the same size, so its gate stays hard.
    let gates = [
        (
            "BENCH_core.json",
            "search_qps",
            "queries",
            Some("descent_ns"),
        ),
        (
            "BENCH_serve.json",
            "throughput_qps",
            "queries",
            Some("p99_us"),
        ),
        (
            "BENCH_shard.json",
            "throughput_qps",
            "queries",
            Some("p99_us"),
        ),
        (
            "BENCH_net.json",
            "throughput_qps",
            "queries",
            Some("p99_us"),
        ),
        ("BENCH_store.json", "wal_ops_per_s", "wal_ops", None),
        (
            "BENCH_dyn.json",
            "update_ops_per_s",
            "updates",
            Some("p99_us"),
        ),
    ];
    let mut failed = false;
    for (file, gate_field, size_field, lat_field) in gates {
        let (base, cur) = match (load(&committed, file), load(&fresh, file)) {
            (Ok(b), Ok(c)) => (b, c),
            // No committed baseline yet (a snapshot added in this very
            // change, or an older checkout): there is nothing to regress
            // against, so note it and move on. A missing *fresh* file is
            // still a failure — the generator was supposed to write it.
            (Err(e), Ok(_)) => {
                println!("  NOTE: {file} has no committed baseline ({e}) — gate not applied");
                continue;
            }
            (b, c) => {
                for err in [b.err(), c.err()].into_iter().flatten() {
                    eprintln!("[compare] {err}");
                }
                failed = true;
                continue;
            }
        };
        println!(
            "== {file} (gate: {gate_field}, tolerance {:.0}%)",
            tol * 100.0
        );
        for (k, cur_v) in &cur {
            match base.get(k) {
                Some(base_v) if *base_v != 0.0 => {
                    let ratio = cur_v / base_v;
                    println!("  {k:<18} {base_v:>14.2} -> {cur_v:>14.2}  ({ratio:>6.2}x)");
                }
                _ => println!("  {k:<18} {:>14} -> {cur_v:>14.2}", "-"),
            }
        }
        let undersized = match (base.get(size_field), cur.get(size_field)) {
            (Some(b), Some(c)) => c < b,
            _ => false,
        };
        if undersized {
            println!(
                "  SKIP: fresh {size_field} below the baseline's — \
                 throughput not comparable, gate not applied"
            );
            continue;
        }
        match (base.get(gate_field), cur.get(gate_field)) {
            (Some(b), Some(c)) if *b > 0.0 => {
                let floor = b * (1.0 - tol);
                if *c < floor {
                    eprintln!(
                        "[compare] FAIL {file}: {gate_field} {c:.0} < floor {floor:.0} \
                         (committed {b:.0}, tolerance {:.0}%)",
                        tol * 100.0
                    );
                    failed = true;
                } else {
                    println!("  PASS: {gate_field} {c:.0} >= floor {floor:.0}");
                }
            }
            _ => {
                eprintln!("[compare] FAIL {file}: {gate_field} missing or zero in baseline");
                failed = true;
            }
        }
        // Tail-latency gate: p99 regressions fail even when aggregate
        // throughput holds.
        let Some(lat_field) = lat_field else {
            continue;
        };
        match (base.get(lat_field), cur.get(lat_field)) {
            (Some(b), Some(c)) if *b > 0.0 => {
                let ceiling = b * (1.0 + tol);
                if *c > ceiling {
                    eprintln!(
                        "[compare] FAIL {file}: {lat_field} {c:.2} > ceiling {ceiling:.2} \
                         (committed {b:.2}, tolerance {:.0}%)",
                        tol * 100.0
                    );
                    failed = true;
                } else {
                    println!("  PASS: {lat_field} {c:.2} <= ceiling {ceiling:.2}");
                }
            }
            // A side without the field (older snapshot) is a notice, not
            // a failure: the throughput gate above already ran.
            _ => println!("  NOTE: {lat_field} missing on one side — latency gate not applied"),
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        println!("[compare] all gates passed");
        ExitCode::SUCCESS
    }
}
