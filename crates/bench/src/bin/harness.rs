//! Experiment harness: regenerate the tables for every theorem, lemma,
//! corollary, and figure of the paper (see DESIGN.md's experiment index).
//!
//! Usage:
//! ```text
//! cargo run -p fc-bench --release --bin harness              # all
//! cargo run -p fc-bench --release --bin harness -- t1 t4    # subset
//! cargo run -p fc-bench --release --bin harness -- --list   # ids
//! ```

use fc_bench::experiments;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let all = experiments::all();
    if args.iter().any(|a| a == "--list") {
        for (id, _) in &all {
            println!("{id}");
        }
        return;
    }
    // Optional: --csv <dir> writes each table as <dir>/<id>.csv too.
    let mut csv_dir: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        if pos + 1 >= args.len() {
            eprintln!("--csv requires a directory argument");
            std::process::exit(1);
        }
        csv_dir = Some(args.remove(pos + 1));
        args.remove(pos);
    }
    // Optional: --snapshot <dir> writes BENCH_serve.json / BENCH_shard.json
    // (wall-clock serving-stack snapshots; see fc_bench::snapshot). With no
    // experiment ids, the snapshots run alone.
    if let Some(pos) = args.iter().position(|a| a == "--snapshot") {
        if pos + 1 >= args.len() {
            eprintln!("--snapshot requires a directory argument");
            std::process::exit(1);
        }
        let dir = std::path::PathBuf::from(args.remove(pos + 1));
        args.remove(pos);
        eprintln!(
            "[harness] writing serving snapshots to {} ...",
            dir.display()
        );
        let (serve, shard, net, store, dyn_snap) =
            fc_bench::snapshot::write_snapshots(&dir).expect("write snapshots");
        eprintln!(
            "[harness] serve {:.0} q/s, shard (batched) {:.0} q/s, \
             net (wire) {:.0} q/s, wal {:.0} ops/s, recover {:.1} ms, \
             dyn {:.0} ops/s ({:.1}x rebuild) on {} cores",
            serve.throughput_qps,
            shard.throughput_qps,
            net.throughput_qps,
            store.wal_ops_per_s,
            store.recover_ms,
            dyn_snap.update_ops_per_s,
            dyn_snap.speedup,
            serve.cores
        );
        if args.is_empty() {
            return;
        }
    }
    #[allow(clippy::type_complexity)]
    let selected: Vec<&(&str, fn() -> fc_bench::Table)> = if args.is_empty() {
        all.iter().collect()
    } else {
        all.iter()
            .filter(|(id, _)| args.iter().any(|a| a == id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("unknown experiment id(s): {args:?}; use --list");
        std::process::exit(1);
    }
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    for (id, f) in selected {
        eprintln!("[harness] running {id} ...");
        let table = f();
        println!("{}", table.render());
        if let Some(dir) = &csv_dir {
            let path = format!("{dir}/{id}.csv");
            std::fs::write(&path, table.to_csv()).expect("write csv");
            eprintln!("[harness] wrote {path}");
        }
    }
}
