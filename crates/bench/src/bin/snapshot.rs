//! Write the core + serving + wire + durability + dynamic-maintenance
//! performance snapshots (`BENCH_core.json`, `BENCH_serve.json`,
//! `BENCH_shard.json`, `BENCH_net.json`, `BENCH_store.json`,
//! `BENCH_dyn.json`) into a directory (default: the current one).
//!
//! ```text
//! cargo run -p fc-bench --release --bin snapshot -- <out-dir>
//! FC_BENCH_QUERIES=100000 FC_BENCH_ASSERT=1 cargo run --release -p fc-bench --bin snapshot
//! ```

use fc_bench::snapshot;
use std::path::PathBuf;

fn main() {
    let dir: PathBuf = std::env::args().nth(1).unwrap_or_else(|| ".".into()).into();
    let n = snapshot::workload_size();
    eprintln!("[snapshot] workload: {n} uniform queries");
    let (serve, shard, net, store, dyn_snap) =
        snapshot::write_snapshots(&dir).expect("write snapshots");
    for s in [&serve, &shard, &net] {
        println!(
            "{:<6} build {:>8.1} ms | {:>10.0} q/s | p50 {:>8.1} us | p99 {:>8.1} us | shed {:.4}",
            s.name, s.build_ms, s.throughput_qps, s.p50_us, s.p99_us, s.shed_rate
        );
    }
    println!(
        "store  snap  {:>8.1} ms | {:>10.0} wal-ops/s | recover {:>8.1} ms ({} records)",
        store.snapshot_ms, store.wal_ops_per_s, store.recover_ms, store.replayed_records
    );
    println!(
        "dyn    incr  {:>10.0} ops/s | rebuild {:>8.0} ops/s ({:>6.1}x) | mixed {:>10.0} ops/s | p99 {:>6.1} us",
        dyn_snap.update_ops_per_s,
        dyn_snap.baseline_ops_per_s,
        dyn_snap.speedup,
        dyn_snap.mixed_ops_per_s,
        dyn_snap.p99_us
    );
    eprintln!(
        "[snapshot] wrote BENCH_core.json, BENCH_serve.json, BENCH_shard.json, \
         BENCH_net.json, BENCH_store.json, BENCH_dyn.json in {}",
        dir.display()
    );
}
