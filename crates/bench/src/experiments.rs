//! One function per experiment of DESIGN.md's per-experiment index.

use crate::table::Table;
use fc_catalog::gen::{self, SizeDist};
use fc_catalog::invariants;
use fc_catalog::CascadedTree;
use fc_coop::explicit::coop_search_explicit;
use fc_coop::general::{binarize, coop_search_binarized, coop_search_long_path};
use fc_coop::implicit::{
    coop_search_implicit, implicit_search_seq, ConsistentLeafOracle, LeafOracleAdapter,
};
use fc_coop::reach::{reach_overlap, reach_size};
use fc_coop::skeleton::check_lemma1;
use fc_coop::{CoopStructure, ParamMode};
use fc_geom::cooploc::locate_coop;
use fc_geom::septree::{locate_binary_per_node, locate_sequential, NodeKind, SeparatorTree};
use fc_geom::spatial::{
    locate_spatial_coop, locate_spatial_sequential, SpatialComplex, SpatialLocator, SpatialParams,
};
use fc_geom::subdivision::{MonotoneSubdivision, SubdivisionParams};
use fc_pram::{Model, Pram};
use fc_retrieval::enclosure::{random_rects, PointEnclosure};
use fc_retrieval::range2d::{random_points, RangeTree2D, Rect};
use fc_retrieval::range3d::{random_points3, Box3, RangeTree3D};
use fc_retrieval::segint::{random_segments, HQuery, SegmentIntersection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SEED: u64 = 0xF00D;

/// The processor sweep used by the search experiments (the cost model
/// accepts astronomically large p — that is the point of simulating the
/// PRAM rather than running on hardware).
const P_SWEEP: [usize; 7] = [1, 1 << 8, 1 << 12, 1 << 16, 1 << 20, 1 << 26, 1 << 32];

fn fmt_f(x: f64) -> String {
    format!("{x:.1}")
}

/// E-T1-explicit — Theorem 1, explicit search: steps vs p at fixed n.
pub fn t1_explicit() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let height = 14u32;
    let n = 1usize << 18;
    let tree = gen::balanced_binary(height, n, SizeDist::Uniform, &mut rng);
    let auto = CoopStructure::preprocess(tree.clone(), ParamMode::Auto);
    let theory = CoopStructure::preprocess(tree, ParamMode::Theory);

    let mut t = Table::new(
        format!(
            "E-T1-explicit (Theorem 1): explicit cooperative search, n = 2^18, height {height}"
        ),
        &[
            "p",
            "steps(auto)",
            "h(auto)",
            "hops",
            "tail",
            "steps(theory)",
            "naive(1 proc)",
            "(log n)/log p",
        ],
    );
    let queries: Vec<(Vec<_>, i64)> = (0..50)
        .map(|_| {
            let leaf = gen::random_leaf(auto.tree(), &mut rng);
            (
                auto.tree().path_from_root(leaf),
                rng.gen_range(0..(n as i64 * 16)),
            )
        })
        .collect();
    let log_n = (n as f64).log2();
    for p in P_SWEEP {
        let (mut sa, mut st_, mut sn, mut hops, mut tail) = (0u64, 0u64, 0u64, 0usize, 0usize);
        let mut h = None;
        for (path, y) in &queries {
            let mut pa = Pram::new(p, Model::Crew);
            let ra = coop_search_explicit(&auto, path, *y, &mut pa);
            sa += pa.steps();
            hops += ra.stats.hops;
            tail += ra.stats.tail_nodes;
            h = h.or(ra.stats.used_h);
            let mut pt = Pram::new(p, Model::Crew);
            coop_search_explicit(&theory, path, *y, &mut pt);
            st_ += pt.steps();
            let mut pn = Pram::new(1, Model::Crew);
            fc_catalog::search::search_path_naive(auto.tree(), path, *y, Some(&mut pn));
            sn += pn.steps();
        }
        let q = queries.len() as f64;
        t.row(vec![
            format!("2^{}", (usize::BITS - 1 - p.leading_zeros())),
            fmt_f(sa as f64 / q),
            h.map_or("-".into(), |h| h.to_string()),
            fmt_f(hops as f64 / q),
            fmt_f(tail as f64 / q),
            fmt_f(st_ as f64 / q),
            fmt_f(sn as f64 / q),
            fmt_f(log_n / (p.max(2) as f64).log2()),
        ]);
    }
    t.note(
        "shape check: steps(auto) should fall like (log n)/log p once p clears the h>=2 threshold",
    );
    t.note("theory mode uses the paper's exact alpha/h_i constants (tiny hops for practical p)");
    t
}

/// E-T1-implicit — Theorem 1, implicit search.
pub fn t1_implicit() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 1);
    let height = 13u32;
    let n = 1usize << 17;
    let tree = gen::balanced_binary(height, n, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let mut t = Table::new(
        "E-T1-implicit (Theorem 1 / Section 2.3): implicit cooperative search, n = 2^17",
        &["p", "steps", "work", "hops", "seq steps(1 proc)"],
    );
    let targets: Vec<_> = (0..30)
        .map(|_| gen::random_leaf(st.tree(), &mut rng))
        .collect();
    for p in P_SWEEP {
        let (mut steps, mut work, mut hops, mut seq) = (0u64, 0u64, 0usize, 0u64);
        for &target in &targets {
            let oracle = ConsistentLeafOracle::new(st.tree(), target);
            let adapter = LeafOracleAdapter::new(st.tree(), &oracle);
            let y = rng.gen_range(0..(n as i64 * 16));
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_implicit(&st, &adapter, y, &mut pram);
            steps += pram.steps();
            work += pram.work();
            hops += out.stats.hops;
            let mut p1 = Pram::new(1, Model::Crew);
            implicit_search_seq(&st, &adapter, y, Some(&mut p1));
            seq += p1.steps();
        }
        let q = targets.len() as f64;
        t.row(vec![
            format!("2^{}", (usize::BITS - 1 - p.leading_zeros())),
            fmt_f(steps as f64 / q),
            fmt_f(work as f64 / q),
            fmt_f(hops as f64 / q),
            fmt_f(seq as f64 / q),
        ]);
    }
    t.note("implicit hops cover all 2^h unit nodes: same step shape as explicit, higher work");
    t
}

/// E-T1-prep — preprocessing time/work vs n (EREW, n/log n processors).
pub fn prep() -> Table {
    let mut t = Table::new(
        "E-T1-prep (Theorem 1): preprocessing on EREW with n/log n processors",
        &[
            "n",
            "level-sync steps",
            "work/n",
            "log^2 n",
            "pipelined rounds (ACG)",
            "pipelined work/n",
            "4 log n",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(SEED + 2);
    for exp in [12u32, 14, 16, 18] {
        let n = 1usize << exp;
        let height = exp - 4;
        let tree = gen::balanced_binary(height, n, SizeDist::Uniform, &mut rng);
        let procs = (n / exp as usize).max(1);
        let mut pram = Pram::new(procs, Model::Erew);
        let _ = CoopStructure::preprocess_cost(tree.clone(), ParamMode::Auto, &mut pram);
        // The real pipelined (ACG) schedule, executed round by round.
        let (_, pstats) = fc_catalog::pipeline::build_pipelined(tree, 4, None);
        t.row(vec![
            format!("2^{exp}"),
            pram.steps().to_string(),
            fmt_f(pram.work() as f64 / n as f64),
            (exp * exp).to_string(),
            pstats.rounds.to_string(),
            fmt_f(pstats.work as f64 / n as f64),
            (4 * exp).to_string(),
        ]);
    }
    t.note("level-synchronous: O(log^2 n) depth; the executed ACG pipelined schedule: O(log n) rounds, linear work");
    t
}

/// E-L2-space — Lemma 2: total structure space vs n.
pub fn space() -> Table {
    let mut t = Table::new(
        "E-L2-space (Lemma 2): T' occupies O(n) words",
        &["n", "aug words", "skeleton words", "total", "total/n"],
    );
    let mut rng = SmallRng::seed_from_u64(SEED + 3);
    for exp in [12u32, 14, 16, 18] {
        let n = 1usize << exp;
        let tree = gen::balanced_binary(exp - 4, n, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Theory);
        let aug = st.cascade().total_aug_size();
        let skel: usize = st.space_rows().iter().map(|r| r.skeleton_words).sum();
        let total = st.total_space_words();
        t.row(vec![
            format!("2^{exp}"),
            aug.to_string(),
            skel.to_string(),
            total.to_string(),
            fmt_f(total as f64 / n as f64),
        ]);
    }
    t.note("total/n must stay flat as n grows (linear space)");
    t
}

/// E-L1-disjoint — Lemma 1: skeleton-key disjointness.
pub fn lemma1() -> Table {
    let mut t = Table::new(
        "E-L1-disjoint (Lemma 1): skeleton keys are distinct per node",
        &["h", "s_i", "units", "violations", "min sampled root gap"],
    );
    let mut rng = SmallRng::seed_from_u64(SEED + 4);
    let tree = gen::balanced_binary(12, 1 << 17, SizeDist::SingleHeavy(0.5), &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    for sub in st.substructures() {
        let (violations, min_gap) = check_lemma1(sub);
        t.row(vec![
            sub.sp.h.to_string(),
            sub.sp.s.to_string(),
            sub.units.len().to_string(),
            violations.to_string(),
            if min_gap == usize::MAX {
                "-".into()
            } else {
                min_gap.to_string()
            },
        ]);
    }
    t.note("violations must be 0 (requires the bidirectional cascade — see DESIGN.md)");
    t
}

/// E-T2-paths — Theorem 2: long explicit paths.
pub fn t2() -> Table {
    let mut t = Table::new(
        "E-T2-paths (Theorem 2): path length k sweep, steps ~ log n/log p + k/(p^(1-eps) log p)",
        &["k", "p", "eps", "steps", "groups", "p^eps per subpath"],
    );
    let mut rng = SmallRng::seed_from_u64(SEED + 5);
    for k in [256usize, 1024, 4096] {
        let tree = gen::path(k, k * 8, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let path = st.tree().path_from_root(st.tree().leaves()[0]);
        for (p, eps) in [
            (1usize, 0.5),
            (1 << 10, 0.5),
            (1 << 20, 0.5),
            (1 << 20, 0.25),
        ] {
            let y = rng.gen_range(0..(k as i64 * 64));
            let mut pram = Pram::new(p, Model::Crew);
            let out = coop_search_long_path(&st, &path, y, eps, &mut pram);
            t.row(vec![
                k.to_string(),
                format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
                eps.to_string(),
                pram.steps().to_string(),
                out.groups.to_string(),
                out.p_per_subpath.to_string(),
            ]);
        }
    }
    t.note("k/(p^(1-eps)) term dominates at large k; groups shrink as p grows");
    t
}

/// E-T3-degree — Theorem 3: degree-d trees via binarization.
pub fn t3() -> Table {
    let mut t = Table::new(
        "E-T3-degree (Theorem 3): degree-d trees, log d slowdown after binarization",
        &[
            "d",
            "orig height",
            "bin height",
            "steps (p=2^20)",
            "steps x / log2 d",
        ],
    );
    let mut rng = SmallRng::seed_from_u64(SEED + 6);
    let mut base = None;
    for d in [2usize, 4, 8, 16] {
        let height = 4u32;
        let tree = gen::dary(d, height, 40_000, &mut rng);
        let bin = binarize(&tree);
        let st = CoopStructure::preprocess(bin.tree.clone(), ParamMode::Auto);
        let leaf = gen::random_leaf(&tree, &mut rng);
        let mut steps = 0u64;
        for _ in 0..20 {
            let y = rng.gen_range(0..(40_000i64 * 16));
            let mut pram = Pram::new(1 << 20, Model::Crew);
            let _ = coop_search_binarized(&st, &bin, bin.old_to_new[leaf.idx()], y, &mut pram);
            steps += pram.steps();
        }
        let avg = steps as f64 / 20.0;
        let b = *base.get_or_insert(avg);
        let lg_d = (d as f64).log2().max(1.0);
        t.row(vec![
            d.to_string(),
            tree.height().to_string(),
            bin.tree.height().to_string(),
            fmt_f(avg),
            fmt_f((avg / b) / lg_d),
        ]);
    }
    t.note("normalised column should stay O(1): the slowdown tracks log d");
    t
}

fn default_subdivision(regions: usize, strips: usize, rng: &mut SmallRng) -> SeparatorTree {
    let sub = MonotoneSubdivision::generate(
        SubdivisionParams {
            regions,
            strips,
            stick: 0.35,
            detach: 0.45,
        },
        rng,
    );
    SeparatorTree::build(sub, ParamMode::Auto)
}

/// E-T4-planar — Theorem 4: cooperative planar point location.
pub fn t4() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 7);
    let t4_tree = default_subdivision(4096, 48, &mut rng);
    let mut t = Table::new(
        format!(
            "E-T4-planar (Theorem 4): point location, f = 4096 regions, {} distinct edges",
            t4_tree.sub.distinct_edges()
        ),
        &[
            "p",
            "coop steps",
            "hops",
            "seq (bridged)",
            "binary/node",
            "mismatches",
        ],
    );
    let queries: Vec<(f64, f64)> = (0..60)
        .map(|_| t4_tree.sub.random_query(&mut rng))
        .collect();
    for p in P_SWEEP {
        let (mut cs, mut hops, mut ss, mut bs, mut bad) = (0u64, 0usize, 0u64, 0u64, 0usize);
        for &(x, y) in &queries {
            let want = t4_tree.sub.locate_brute(x, y);
            let mut pc = Pram::new(p, Model::Crew);
            let (got, stats) = locate_coop(&t4_tree, x, y, &mut pc);
            cs += pc.steps();
            hops += stats.hops;
            if got != want {
                bad += 1;
            }
            let mut ps = Pram::new(1, Model::Crew);
            locate_sequential(&t4_tree, x, y, Some(&mut ps));
            ss += ps.steps();
            let mut pb = Pram::new(1, Model::Crew);
            locate_binary_per_node(&t4_tree, x, y, Some(&mut pb));
            bs += pb.steps();
        }
        let q = queries.len() as f64;
        t.row(vec![
            format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
            fmt_f(cs as f64 / q),
            fmt_f(hops as f64 / q),
            fmt_f(ss as f64 / q),
            fmt_f(bs as f64 / q),
            bad.to_string(),
        ]);
    }
    t.note("mismatches must be 0; coop steps fall with log p; bridged sequential beats binary-per-node");
    t
}

/// E-T5-spatial — Theorem 5: spatial point location.
pub fn t5() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 8);
    let complex = SpatialComplex::generate(
        SpatialParams {
            cells: 256,
            footprint: SubdivisionParams {
                regions: 256,
                strips: 24,
                stick: 0.35,
                detach: 0.45,
            },
            coincide: 0.3,
        },
        &mut rng,
    );
    let loc = SpatialLocator::build(complex, ParamMode::Auto);
    let mut t = Table::new(
        "E-T5-spatial (Theorem 5 / Cor 1): 3D point location, 256 cells x 256 footprint regions",
        &[
            "p",
            "coop steps",
            "hops",
            "inner queries",
            "seq steps",
            "mismatches",
        ],
    );
    let queries: Vec<(f64, f64, f64)> = (0..40)
        .map(|_| loc.complex.random_query(&mut rng))
        .collect();
    for p in [1usize, 1 << 8, 1 << 14, 1 << 20, 1 << 26] {
        let (mut cs, mut hops, mut inner, mut ss, mut bad) = (0u64, 0usize, 0usize, 0u64, 0usize);
        for &(x, y, z) in &queries {
            let want = loc.complex.locate_brute(x, y, z);
            let mut pc = Pram::new(p, Model::Crew);
            let (got, stats) = locate_spatial_coop(&loc, x, y, z, &mut pc);
            cs += pc.steps();
            hops += stats.hops;
            inner += stats.inner_queries;
            if got != want {
                bad += 1;
            }
            let mut ps = Pram::new(1, Model::Crew);
            locate_spatial_sequential(&loc, x, y, z, &mut ps);
            ss += ps.steps();
        }
        let q = queries.len() as f64;
        t.row(vec![
            format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
            fmt_f(cs as f64 / q),
            fmt_f(hops as f64 / q),
            fmt_f(inner as f64 / q),
            fmt_f(ss as f64 / q),
            bad.to_string(),
        ]);
    }
    t.note("two-level speedup: steps fall ~quadratically in log p (Theorem 5's (log n / log p)^2)");
    t
}

/// E-T6-segint — Theorem 6: orthogonal segment intersection.
pub fn t6() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 9);
    let s = SegmentIntersection::build(random_segments(20_000, 100_000, &mut rng), ParamMode::Auto);
    let mut t = Table::new(
        format!(
            "E-T6-segint (Theorem 6): segment intersection, n = 20000, catalog = {}",
            s.catalog_size()
        ),
        &[
            "p",
            "selectivity",
            "avg k",
            "direct steps",
            "indirect steps (CRCW)",
        ],
    );
    for p in [1usize, 1 << 10, 1 << 20] {
        for width in [100i64, 10_000, 2_000_000] {
            let (mut k, mut ds, mut is_) = (0u64, 0u64, 0u64);
            let mut rng2 = SmallRng::seed_from_u64(SEED + 10 + width as u64);
            for _ in 0..25 {
                let x0 = rng2.gen_range(0..100_000);
                let q = HQuery {
                    y: rng2.gen_range(0..100_000),
                    x_lo: x0,
                    x_hi: x0 + width,
                };
                let mut pd = Pram::new(p, Model::Crew);
                let list = s.query_coop(q, true, &mut pd);
                k += list.total;
                ds += pd.steps();
                let mut pi = Pram::new(p, Model::Crcw);
                s.query_coop(q, false, &mut pi);
                is_ += pi.steps();
            }
            t.row(vec![
                format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
                format!("w={width}"),
                fmt_f(k as f64 / 25.0),
                fmt_f(ds as f64 / 25.0),
                fmt_f(is_ as f64 / 25.0),
            ]);
        }
    }
    t.note("direct pays k/p; indirect is output-size independent (Theorem 6 parts 1 vs 2)");
    t
}

/// E-T6-range — Theorem 6: 2D orthogonal range search.
pub fn t6r() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 11);
    let t2d = RangeTree2D::build(random_points(8192, 1 << 20, &mut rng), ParamMode::Auto);
    let mut t = Table::new(
        "E-T6-range (Theorem 6): 2D range search, n = 8192",
        &["p", "avg k", "direct steps", "indirect steps"],
    );
    let queries: Vec<Rect> = (0..30)
        .map(|_| {
            let (a, b) = (rng.gen_range(0i64..1 << 20), rng.gen_range(0i64..1 << 20));
            let (c, d) = (rng.gen_range(0i64..1 << 20), rng.gen_range(0i64..1 << 20));
            Rect {
                x1: a.min(b),
                x2: a.max(b),
                y1: c.min(d),
                y2: c.max(d),
            }
        })
        .collect();
    for p in [1usize, 1 << 10, 1 << 20, 1 << 30] {
        let (mut k, mut ds, mut is_) = (0u64, 0u64, 0u64);
        for &q in &queries {
            let mut pd = Pram::new(p, Model::Crew);
            let list = t2d.query_coop(q, true, &mut pd);
            k += list.total;
            ds += pd.steps();
            let mut pi = Pram::new(p, Model::Crcw);
            t2d.query_coop(q, false, &mut pi);
            is_ += pi.steps();
        }
        let q = queries.len() as f64;
        t.row(vec![
            format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
            fmt_f(k as f64 / q),
            fmt_f(ds as f64 / q),
            fmt_f(is_ as f64 / q),
        ]);
    }
    t
}

/// E-T6-enclose — Theorem 6: point enclosure.
pub fn t6e() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 12);
    let pe = PointEnclosure::build(random_rects(8000, 100_000, &mut rng));
    let mut t = Table::new(
        format!(
            "E-T6-enclose (Theorem 6): point enclosure, n = 8000, stored intervals = {}",
            pe.stored_intervals()
        ),
        &["p", "avg k", "steps"],
    );
    let queries: Vec<(i64, i64)> = (0..30)
        .map(|_| (rng.gen_range(0..100_000), rng.gen_range(0..100_000)))
        .collect();
    for p in [1usize, 1 << 10, 1 << 20] {
        let (mut k, mut steps) = (0u64, 0u64);
        for &(x, y) in &queries {
            let mut pram = Pram::new(p, Model::Crew);
            let ids = pe.query_coop(x, y, &mut pram);
            k += ids.len() as u64;
            steps += pram.steps();
        }
        let q = queries.len() as f64;
        t.row(vec![
            format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
            fmt_f(k as f64 / q),
            fmt_f(steps as f64 / q),
        ]);
    }
    t.note("interval-tree realisation: (log n/log p)^2 shape; the paper's flat bound needs an unspecified structure (EXPERIMENTS.md)");
    t
}

/// E-C2-3d — Corollary 2: 3D range search.
pub fn c2() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 13);
    let t3d = RangeTree3D::build(random_points3(1024, 1 << 18, &mut rng), ParamMode::Auto);
    let mut t = Table::new(
        format!(
            "E-C2-3d (Corollary 2): 3D range search, n = 1024, space = {} words",
            t3d.total_space()
        ),
        &["p", "avg k", "steps", "((log n)/log p)^2"],
    );
    let queries: Vec<Box3> = (0..20)
        .map(|_| {
            let mut dim = || {
                let (a, b) = (rng.gen_range(0i64..1 << 18), rng.gen_range(0i64..1 << 18));
                (a.min(b), a.max(b))
            };
            Box3 {
                x: dim(),
                y: dim(),
                z: dim(),
            }
        })
        .collect();
    let log_n = 1024f64.log2();
    for p in [1usize, 1 << 10, 1 << 20, 1 << 30] {
        let (mut k, mut steps) = (0u64, 0u64);
        for &q in &queries {
            let mut pram = Pram::new(p, Model::Crew);
            let ids = t3d.query_coop(q, &mut pram);
            k += ids.len() as u64;
            steps += pram.steps();
        }
        let q = queries.len() as f64;
        let shape = (log_n / (p.max(2) as f64).log2()).powi(2);
        t.row(vec![
            format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
            fmt_f(k as f64 / q),
            fmt_f(steps as f64 / q),
            fmt_f(shape),
        ]);
    }
    t
}

/// F-1-reach — Figure 1: |reach(c, U)| growth with unit height.
pub fn fig1() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 14);
    let tree = gen::balanced_binary(10, 1 << 16, SizeDist::Uniform, &mut rng);
    let fc = CascadedTree::build_bidir(tree, 4);
    let b = fc.fanout_bound();
    let root = fc.tree().root();
    let c = fc.keys(root).len() / 2;
    let mut t = Table::new(
        "F-1-reach (Figure 1): size of reach(c, U) per level, bound (2(2b+1))^l",
        &["level l", "|reach| at level", "bound (2(2b+1))^l"],
    );
    let (per_level, total) = reach_size(&fc, root, c, 6);
    for (l, &cnt) in per_level.iter().enumerate() {
        t.row(vec![
            l.to_string(),
            cnt.to_string(),
            (2 * (2 * b + 1)).pow(l as u32).to_string(),
        ]);
    }
    t.note(format!("total reach size {total} = O(p^beta), beta < 1"));
    t
}

/// F-2-prune — Figure 2: reach overlap (why approach 2 fails).
pub fn fig2() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 15);
    let mut t = Table::new(
        "F-2-prune (Figure 2): naive reach storage vs distinct coverage",
        &[
            "catalog dist",
            "sum of |reach|",
            "distinct pairs",
            "blow-up",
        ],
    );
    for (name, dist) in [
        ("uniform", SizeDist::Uniform),
        ("single-heavy", SizeDist::SingleHeavy(0.6)),
    ] {
        let tree = gen::balanced_binary(7, 12_000, dist, &mut rng);
        let fc = CascadedTree::build_bidir(tree, 4);
        let (sum, distinct) = reach_overlap(&fc, fc.tree().root(), 3);
        t.row(vec![
            name.to_string(),
            sum.to_string(),
            distinct.to_string(),
            fmt_f(sum as f64 / distinct.max(1) as f64),
        ]);
    }
    t.note("the blow-up factor is what the skeleton sampling (final approach) eliminates");
    t
}

/// F-3-skeleton — Figure 3: skeleton forest statistics per substructure.
pub fn fig3() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 16);
    // Root-heavy catalogs: the upper nodes hold most of the entries, so
    // the forests genuinely sample (m > 1), as in the paper's Figure 3.
    let tree = gen::balanced_binary(12, 1 << 17, SizeDist::RootHeavy, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let mut t = Table::new(
        "F-3-skeleton (Figure 3): units and skeleton forests per substructure T_i (root-heavy catalogs)",
        &["h", "s_i", "trunc", "units", "avg m", "sparse frac", "skeleton words"],
    );
    for sub in st.substructures() {
        let units = sub.units.len();
        let m_sum: usize = sub.units.iter().map(|u| u.m as usize).sum();
        let sparse = sub.units.iter().filter(|u| u.is_sparse()).count();
        t.row(vec![
            sub.sp.h.to_string(),
            sub.sp.s.to_string(),
            sub.sp.trunc.to_string(),
            units.to_string(),
            fmt_f(m_sum as f64 / units.max(1) as f64),
            fmt_f(sparse as f64 / units.max(1) as f64),
            sub.space().to_string(),
        ]);
    }
    t
}

/// F-4-fanout — Figure 4 / Lemma 1's separation bound.
pub fn fig4() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 17);
    let tree = gen::balanced_binary(9, 1 << 15, SizeDist::Uniform, &mut rng);
    let fc = CascadedTree::build_bidir(tree, 4);
    let b = fc.fanout_bound();
    let report = invariants::check_all(&fc);
    let mut t = Table::new(
        "F-4-fanout (Figure 4): bridge separation profile vs (2b+1)(2b+r+1)-1",
        &["r", "max observed separation", "Lemma 1 bound"],
    );
    let profile = invariants::bridge_separation_profile(&fc, 6);
    for (r, &sep) in profile.iter().enumerate() {
        t.row(vec![
            r.to_string(),
            sep.to_string(),
            ((2 * b + 1) * (2 * b + r + 1) - 1).to_string(),
        ]);
    }
    t.note(format!(
        "properties: b observed {} / guaranteed {}, adjacency {} / {}, monotone {}",
        report.b_observed,
        report.b_guaranteed,
        report.adjacency_observed,
        report.adjacency_guaranteed,
        report.monotone
    ));
    t
}

/// F-5-seqloc — Figure 5: sequential point-location trace.
pub fn fig5() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 18);
    let tree = default_subdivision(16, 8, &mut rng);
    let (x, y) = tree.sub.random_query(&mut rng);
    let region = tree.sub.locate_brute(x, y);
    let mut t = Table::new(
        format!(
            "F-5-seqloc (Figure 5): sequential trace for q = ({x:.2}, {y:.2}) -> region r_{region}"
        ),
        &["node", "kind", "activity", "branch"],
    );
    // Re-run the search, recording the trace.
    let fc = tree.st.cascade();
    let tr = tree.st.tree();
    let yk = tree.clamp_y(y);
    let key = fc_catalog::key::OrdF64::new(yk);
    let mut node = tr.root();
    let mut aug = fc.find_aug(node, key);
    loop {
        match tree.kind[node.idx()] {
            NodeKind::Region(r) => {
                t.row(vec![
                    format!("r_{r}"),
                    "region".into(),
                    "-".into(),
                    "-".into(),
                ]);
                break;
            }
            NodeKind::Separator(c) => {
                let native = fc.native_result(node, aug).native_idx as usize;
                let (act, branch) = match tree.classify(node, native, yk) {
                    fc_geom::septree::Activity::Active(_) => {
                        ("active", tree.discriminate(c, x, yk))
                    }
                    fc_geom::septree::Activity::Inactive => (
                        "inactive",
                        tree.strip_branch[node.idx()][tree.sub.strip_of(yk)],
                    ),
                };
                t.row(vec![
                    format!("sigma_{c}"),
                    "separator".into(),
                    act.into(),
                    format!("{branch:?}"),
                ]);
                let slot = branch.slot();
                let (next, _) = fc.descend(node, slot, aug, key);
                node = tr.children(node)[slot];
                aug = next;
            }
        }
    }
    let (got, stats) = locate_sequential(&tree, x, y, None);
    t.note(format!(
        "verified r_{got} == brute r_{region}; active {} inactive {} on the path",
        stats.active_nodes, stats.inactive_nodes
    ));
    t
}

/// F-6-cooploc — Figure 6: cooperative hop trace.
pub fn fig6() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 19);
    let tree = default_subdivision(1024, 24, &mut rng);
    let mut t = Table::new(
        "F-6-cooploc (Figure 6): cooperative point location traces (per query)",
        &[
            "query",
            "region",
            "hops",
            "active nodes",
            "final (L, R)",
            "tail",
            "fallbacks",
        ],
    );
    for i in 0..8 {
        let (x, y) = tree.sub.random_query(&mut rng);
        let mut pram = Pram::new(1 << 20, Model::Crew);
        let (region, stats) = locate_coop(&tree, x, y, &mut pram);
        assert_eq!(region, tree.sub.locate_brute(x, y));
        t.row(vec![
            format!("q{i}"),
            format!("r_{region}"),
            stats.hops.to_string(),
            stats.active_nodes.to_string(),
            format!("({}, {})", stats.window.0, stats.window.1),
            stats.tail_nodes.to_string(),
            stats.fallbacks.to_string(),
        ]);
    }
    t.note("the recomputed branch function satisfied the consistency assumption in every hop (debug-asserted)");
    t
}

/// A-b-calib — ablation: guaranteed fan-out bound vs instance-calibrated.
///
/// The window formulas use the fan-out constant `b`. The guaranteed bound
/// (`s − 1 = 3`) makes Lemma 3 unconditional; calibrating `b` to the
/// instance's *observed* fan-out shrinks every window by a `((2b+1)/7)^l`
/// factor and unlocks larger hop heights at the same `p`, at the price of
/// per-query coverage validation with a binary-search fallback.
pub fn ablation_b() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 20);
    let n = 1usize << 17;
    let tree = gen::balanced_binary(13, n, SizeDist::Uniform, &mut rng);
    let fc = fc_catalog::CascadedTree::build_bidir(tree, 4);
    let report = invariants::check_all(&fc);
    let b_obs = report.b_observed.max(1);
    let guaranteed = CoopStructure::from_cascade(fc.clone(), ParamMode::Auto);
    let calibrated = CoopStructure::from_cascade_with_b(fc, ParamMode::Auto, b_obs);
    let mut t = Table::new(
        format!(
            "A-b-calib (ablation): window constant b — guaranteed {} vs observed {}",
            report.b_guaranteed, b_obs
        ),
        &[
            "p",
            "steps (b guar.)",
            "steps (b calib.)",
            "fallbacks (calib.)",
            "h guar./calib.",
        ],
    );
    let queries: Vec<(Vec<_>, i64)> = (0..40)
        .map(|_| {
            let leaf = gen::random_leaf(guaranteed.tree(), &mut rng);
            (
                guaranteed.tree().path_from_root(leaf),
                rng.gen_range(0..(n as i64 * 16)),
            )
        })
        .collect();
    for p in [1usize << 12, 1 << 16, 1 << 20, 1 << 26] {
        let (mut sg, mut sc, mut fb) = (0u64, 0u64, 0usize);
        let (mut hg, mut hc) = (None, None);
        for (path, y) in &queries {
            let mut pg = Pram::new(p, Model::Crew);
            let rg = coop_search_explicit(&guaranteed, path, *y, &mut pg);
            sg += pg.steps();
            hg = hg.or(rg.stats.used_h);
            let mut pc = Pram::new(p, Model::Crew);
            let rc = coop_search_explicit(&calibrated, path, *y, &mut pc);
            sc += pc.steps();
            fb += rc.stats.fallbacks;
            hc = hc.or(rc.stats.used_h);
            assert_eq!(rg.finds, rc.finds);
        }
        let q = queries.len() as f64;
        t.row(vec![
            format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
            fmt_f(sg as f64 / q),
            fmt_f(sc as f64 / q),
            fb.to_string(),
            format!("{}/{}", hg.map_or(0, |h| h), hc.map_or(0, |h| h)),
        ]);
    }
    t.note(
        "calibrated b gives bigger hops at the same p; fallbacks repair any window miss exactly",
    );
    t
}

/// A-modes — ablation: Theory vs Auto parameter selection across n.
pub fn ablation_modes() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 21);
    let mut t = Table::new(
        "A-modes (ablation): paper's band rule (Theory) vs cost-aware selection (Auto)",
        &["n", "p", "steps Theory", "steps Auto", "seq FC"],
    );
    for exp in [14u32, 18] {
        let n = 1usize << exp;
        let tree = gen::balanced_binary(exp - 4, n, SizeDist::Uniform, &mut rng);
        let theory = CoopStructure::preprocess(tree.clone(), ParamMode::Theory);
        let auto = CoopStructure::preprocess(tree, ParamMode::Auto);
        for p in [1usize << 10, 1 << 20, 1 << 30] {
            let (mut st_, mut sa, mut sq) = (0u64, 0u64, 0u64);
            for _ in 0..25 {
                let leaf = gen::random_leaf(auto.tree(), &mut rng);
                let path = auto.tree().path_from_root(leaf);
                let y = rng.gen_range(0..(n as i64 * 16));
                let mut pt = Pram::new(p, Model::Crew);
                coop_search_explicit(&theory, &path, y, &mut pt);
                st_ += pt.steps();
                let mut pa = Pram::new(p, Model::Crew);
                coop_search_explicit(&auto, &path, y, &mut pa);
                sa += pa.steps();
                let mut ps = Pram::new(1, Model::Crew);
                fc_catalog::search::search_path_fc(auto.cascade(), &path, y, Some(&mut ps));
                sq += ps.steps();
            }
            t.row(vec![
                format!("2^{exp}"),
                format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
                fmt_f(st_ as f64 / 25.0),
                fmt_f(sa as f64 / 25.0),
                fmt_f(sq as f64 / 25.0),
            ]);
        }
    }
    t.note("Auto never loses to sequential; Theory can at mid-range p (the paper's constants are asymptotic)");
    t
}

/// E-Cd — Corollary 2 for general d via the recursive range tree.
pub fn cd_general() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED + 22);
    let mut t = Table::new(
        "E-Cd (Corollary 2, general d): recursive range tree, n = 512",
        &["d", "space", "n log^(d-1) n", "steps p=1", "steps p=2^20"],
    );
    let n = 512usize;
    let lg = n.ilog2() as usize + 1;
    for d in 1..=4usize {
        let pts = fc_retrieval::ranged::random_points_d(n, d, 1 << 18, &mut rng);
        let tree = fc_retrieval::ranged::RangeTreeD::build(&pts);
        let (mut s1, mut sp) = (0u64, 0u64);
        for _ in 0..15 {
            let bounds: Vec<(i64, i64)> = (0..d)
                .map(|_| {
                    let (a, b) = (rng.gen_range(0i64..1 << 18), rng.gen_range(0i64..1 << 18));
                    (a.min(b), a.max(b))
                })
                .collect();
            let mut p1 = Pram::new(1, Model::Crew);
            let r1 = tree.query(&bounds, &mut p1);
            s1 += p1.steps();
            let mut pb = Pram::new(1 << 20, Model::Crew);
            let rb = tree.query(&bounds, &mut pb);
            sp += pb.steps();
            assert_eq!(r1, rb);
        }
        t.row(vec![
            d.to_string(),
            tree.space().to_string(),
            (n * lg.pow(d as u32 - 1)).to_string(),
            fmt_f(s1 as f64 / 15.0),
            fmt_f(sp as f64 / 15.0),
        ]);
    }
    t
}

/// E-dyn — the dynamic extension (paper's open problem 4, global
/// rebuilding baseline).
pub fn dynamic() -> Table {
    use fc_catalog::NodeId;
    use fc_coop::dynamic::DynamicCoop;
    let mut rng = SmallRng::seed_from_u64(SEED + 23);
    let tree = gen::balanced_binary(10, 1 << 14, SizeDist::Uniform, &mut rng);
    let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
    let mut t = Table::new(
        "E-dyn (open problem 4): dynamic searches via buffering + global rebuilding",
        &[
            "updates so far",
            "rebuilds",
            "pending",
            "query steps (p=2^16)",
        ],
    );
    let mut pram = Pram::new(1 << 16, Model::Crew);
    let node_count = dy.structure().tree().len() as u32;
    for phase in 0..5 {
        for _ in 0..phase * 2000 {
            let node = NodeId(rng.gen_range(0..node_count));
            let key = rng.gen_range(0..1_000_000i64);
            if rng.gen_bool(0.7) {
                dy.insert(node, key, &mut pram);
            } else {
                dy.remove(node, key, &mut pram);
            }
        }
        let mut qsteps = 0u64;
        for _ in 0..20 {
            let leaf = gen::random_leaf(dy.structure().tree(), &mut rng);
            let path = dy.structure().tree().path_from_root(leaf);
            let mut qp = Pram::new(1 << 16, Model::Crew);
            dy.search(&path, rng.gen_range(0..1_000_000), &mut qp);
            qsteps += qp.steps();
        }
        t.row(vec![
            (phase * 2000 * (phase + 1) / 2 * 2).to_string(),
            dy.rebuilds.to_string(),
            dy.pending_changes().to_string(),
            fmt_f(qsteps as f64 / 20.0),
        ]);
    }
    t.note("query cost stays flat through churn; rebuilds amortise over Theta(n) updates");
    t
}

/// E-op3 — open problem 3 baseline: generalized (subtree) search paths.
pub fn op3() -> Table {
    use fc_coop::general::coop_search_subtree;
    let mut rng = SmallRng::seed_from_u64(SEED + 24);
    let tree = gen::balanced_binary(12, 1 << 16, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let root = st.tree().root();
    let m = st.tree().len();
    let mut t = Table::new(
        format!("E-op3 (open problem 3): locate y in all {m} subtree catalogs"),
        &["p", "steps", "m/p + depth"],
    );
    for p in [1usize, 1 << 6, 1 << 12, 1 << 18, 1 << 24] {
        let mut steps = 0u64;
        for _ in 0..10 {
            let y = rng.gen_range(0..(1i64 << 22));
            let mut pram = Pram::new(p, Model::Crew);
            coop_search_subtree(&st, root, y, &mut pram);
            steps += pram.steps();
        }
        t.row(vec![
            format!("2^{}", usize::BITS - 1 - p.leading_zeros()),
            fmt_f(steps as f64 / 10.0),
            fmt_f(m as f64 / p as f64 + 12.0),
        ]);
    }
    t.note("work-optimal baseline: O(log n + m/p + depth); beating the depth term cooperatively is the open problem");
    t
}

/// E-fault — fc-resilience: detection rate per fault kind, localized repair
/// cost vs full rebuild, and degraded-mode search with mid-query processor
/// kills.
pub fn efault() -> Table {
    use fc_coop::explicit::coop_search_explicit_checked;
    use fc_resilience::{audit, repair, Fault, FaultPlan, FaultSpec};

    let mut rng = SmallRng::seed_from_u64(SEED + 40);
    let height = 10u32;
    let n = 1usize << 14;
    let tree = gen::balanced_binary(height, n, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);

    let kinds: [(&str, FaultSpec); 6] = [
        (
            "key-swap",
            FaultSpec {
                key_swaps: 1,
                ..FaultSpec::default()
            },
        ),
        (
            "key-clobber",
            FaultSpec {
                key_clobbers: 1,
                ..FaultSpec::default()
            },
        ),
        (
            "supremum-clobber",
            FaultSpec {
                supremum_clobbers: 1,
                ..FaultSpec::default()
            },
        ),
        (
            "bridge-perturb",
            FaultSpec {
                bridge_perturbs: 1,
                ..FaultSpec::default()
            },
        ),
        (
            "native-succ-perturb",
            FaultSpec {
                native_succ_perturbs: 1,
                ..FaultSpec::default()
            },
        ),
        (
            "skeleton-perturb",
            FaultSpec {
                skeleton_perturbs: 1,
                ..FaultSpec::default()
            },
        ),
    ];

    let mut t = Table::new(
        format!("E-fault (fc-resilience): inject -> detect -> repair, n = 2^14, height {height}, 20 seeds per kind"),
        &["fault kind", "detected", "repaired clean", "avg repair ops", "full rebuild ops", "fallbacks"],
    );
    let trials = 20u64;
    for (name, spec) in &kinds {
        let (mut detected, mut clean_after, mut fallbacks) = (0usize, 0usize, 0usize);
        let (mut rops, mut fops) = (0u64, 0u64);
        for seed in 0..trials {
            let plan = FaultPlan::generate(&st, spec, 1000 + seed);
            let mut tampered = st.clone();
            plan.apply(&mut tampered);
            let report = audit(&tampered);
            if !report.is_clean() {
                detected += 1;
            }
            let stats = repair(&mut tampered, &report);
            rops += stats.repair_ops as u64;
            fops += stats.full_rebuild_ops as u64;
            if stats.fell_back_to_full_rebuild {
                fallbacks += 1;
            }
            if audit(&tampered).is_clean() {
                clean_after += 1;
            }
        }
        t.row(vec![
            name.to_string(),
            format!("{detected}/{trials}"),
            format!("{clean_after}/{trials}"),
            fmt_f(rops as f64 / trials as f64),
            fmt_f(fops as f64 / trials as f64),
            fallbacks.to_string(),
        ]);
    }

    // Checked search on a heavily bridge-tampered structure: every query
    // either returns the exact answer or a localized error — never a
    // silently wrong answer.
    let plan = FaultPlan::generate(
        &st,
        &FaultSpec {
            bridge_perturbs: 32,
            ..FaultSpec::default()
        },
        99,
    );
    let mut tampered = st.clone();
    plan.apply(&mut tampered);
    let (mut errs, mut oks, mut wrong) = (0usize, 0usize, 0usize);
    for _ in 0..200 {
        let leaf = gen::random_leaf(tampered.tree(), &mut rng);
        let path = tampered.tree().path_from_root(leaf);
        let y = rng.gen_range(0..(n as i64 * 16));
        // Small p: the sequential bridge tail dominates, so queries actually
        // cross the tampered bridges instead of hopping over them.
        let mut pram = Pram::new(16, Model::Crew);
        match coop_search_explicit_checked(&tampered, &path, y, &mut pram) {
            Ok(out) => {
                oks += 1;
                let truth = fc_catalog::search::search_path_naive(tampered.tree(), &path, y, None);
                if out.finds != truth.results {
                    wrong += 1;
                }
            }
            Err(_) => errs += 1,
        }
    }
    t.note(format!(
        "checked search (p=16), 32 bridge perturbs, 200 queries: {errs} flagged Err, {oks} Ok, {wrong} wrong answers among Oks (must be 0)"
    ));

    // Degraded mode: kill half the processors two rounds into the search and
    // compare against a fresh run provisioned at the survivor count.
    let p0 = 1usize << 16;
    let queries: Vec<(Vec<_>, i64)> = (0..30)
        .map(|_| {
            let leaf = gen::random_leaf(st.tree(), &mut rng);
            (
                st.tree().path_from_root(leaf),
                rng.gen_range(0..(n as i64 * 16)),
            )
        })
        .collect();
    let (mut degraded, mut fresh, mut mism) = (0u64, 0u64, 0usize);
    for (path, y) in &queries {
        let mut pram = Pram::new(p0, Model::Crew);
        FaultPlan {
            seed: 0,
            faults: vec![Fault::KillProcessors {
                at_round: 2,
                count: p0 / 2,
            }],
        }
        .arm(&mut pram);
        let out = coop_search_explicit(&st, path, *y, &mut pram);
        degraded += pram.steps();
        let truth = fc_catalog::search::search_path_naive(st.tree(), path, *y, None);
        if out.finds != truth.results {
            mism += 1;
        }
        let mut pf = Pram::new(p0 / 2, Model::Crew);
        coop_search_explicit(&st, path, *y, &mut pf);
        fresh += pf.steps();
    }
    let q = queries.len() as f64;
    t.note(format!(
        "degraded mode (p = 2^16, half killed at round 2): avg steps {} vs fresh run at p/2 {} ({} wrong answers; bound: <= 2x fresh)",
        fmt_f(degraded as f64 / q),
        fmt_f(fresh as f64 / q),
        mism
    ));
    t
}

/// E-discipline — fc-analyze: shadow-memory recording overhead. Each
/// workload runs the production entry point (whose `Tracer` hooks compile
/// to nothing on the `NoTrace` fast path) and the identical code under a
/// live `ShadowMem`, asserting the replay stays violation-free — the same
/// clean configurations the `fc-analyze --gate` CI job enforces.
pub fn discipline() -> Table {
    use fc_catalog::pipeline::{build_pipelined, build_pipelined_traced};
    use fc_coop::explicit::coop_search_explicit_traced;
    use fc_geom::cooploc::locate_coop_traced;
    use fc_pram::listrank::{list_rank, list_rank_traced};
    use fc_pram::ShadowMem;
    use std::time::Instant;

    let mut t = Table::new(
        "E-discipline (fc-analyze): shadow-memory recording overhead, traced vs untraced",
        &[
            "workload",
            "model",
            "untraced ms",
            "traced ms",
            "overhead",
            "accesses recorded",
            "violations",
        ],
    );
    let row = |t: &mut Table,
               name: &str,
               model: &str,
               plain_ms: f64,
               traced_ms: f64,
               sh: &mut ShadowMem| {
        let accesses: u64 = sh
            .phase_stats()
            .iter()
            .map(|(_, s)| s.reads + s.writes)
            .sum();
        let clean = sh.finish();
        assert!(clean, "overhead workload `{name}` must replay clean");
        t.row(vec![
            name.to_string(),
            model.to_string(),
            fmt_f(plain_ms),
            fmt_f(traced_ms),
            format!("{:.1}x", traced_ms / plain_ms.max(1e-9)),
            accesses.to_string(),
            sh.violations().len().to_string(),
        ]);
    };

    let mut rng = SmallRng::seed_from_u64(SEED + 50);
    let tree = gen::balanced_binary(8, 1 << 13, SizeDist::Uniform, &mut rng);

    let t0 = Instant::now();
    let _ = CascadedTree::try_build(tree.clone(), 4).expect("seed build");
    let plain_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut sh = ShadowMem::new(Model::Erew);
    let t0 = Instant::now();
    let _ = CascadedTree::try_build_traced(tree.clone(), 4, &mut sh).expect("traced build");
    row(
        &mut t,
        "build-level h=8 n=2^13",
        "EREW",
        plain_ms,
        t0.elapsed().as_secs_f64() * 1e3,
        &mut sh,
    );

    let t0 = Instant::now();
    let _ = build_pipelined(tree.clone(), 4, None);
    let plain_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut sh = ShadowMem::new(Model::Erew);
    let t0 = Instant::now();
    let _ = build_pipelined_traced(tree.clone(), 4, None, &mut sh);
    row(
        &mut t,
        "build-pipelined h=8 n=2^13",
        "EREW",
        plain_ms,
        t0.elapsed().as_secs_f64() * 1e3,
        &mut sh,
    );

    let deep = gen::balanced_binary(12, 1 << 16, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(deep, ParamMode::Auto);
    let p = 1usize << 20;
    let queries: Vec<(Vec<_>, i64)> = (0..30)
        .map(|_| {
            let leaf = gen::random_leaf(st.tree(), &mut rng);
            (
                st.tree().path_from_root(leaf),
                rng.gen_range(0..(1i64 << 20)),
            )
        })
        .collect();
    let t0 = Instant::now();
    for (path, y) in &queries {
        let mut pram = Pram::new(p, Model::Crew);
        let _ = coop_search_explicit(&st, path, *y, &mut pram);
    }
    let plain_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut sh = ShadowMem::new(Model::Crew);
    let t0 = Instant::now();
    for (path, y) in &queries {
        let mut pram = Pram::new(p, Model::Crew);
        let _ = coop_search_explicit_traced(&st, path, *y, &mut pram, &mut sh);
    }
    row(
        &mut t,
        "search-explicit n=2^16 p=2^20 (30 queries)",
        "CREW",
        plain_ms,
        t0.elapsed().as_secs_f64() * 1e3,
        &mut sh,
    );

    let n = 4096usize;
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut next = vec![0usize; n];
    for w in perm.windows(2) {
        next[w[0]] = w[1];
    }
    next[perm[n - 1]] = perm[n - 1];
    let t0 = Instant::now();
    let _ = list_rank(&next, &mut Pram::new(n, Model::Erew));
    let plain_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut sh = ShadowMem::new(Model::Erew);
    let t0 = Instant::now();
    let _ = list_rank_traced(&next, &mut Pram::new(n, Model::Erew), &mut sh);
    row(
        &mut t,
        "list-rank n=4096",
        "EREW",
        plain_ms,
        t0.elapsed().as_secs_f64() * 1e3,
        &mut sh,
    );

    let sub = MonotoneSubdivision::generate(
        SubdivisionParams {
            regions: 1024,
            strips: 32,
            stick: 0.4,
            detach: 0.4,
        },
        &mut rng,
    );
    let sept = SeparatorTree::build(sub, ParamMode::Auto);
    let gp = 1usize << 20;
    let pts: Vec<(f64, f64)> = (0..30).map(|_| sept.sub.random_query(&mut rng)).collect();
    let t0 = Instant::now();
    for &(x, y) in &pts {
        let _ = locate_coop(&sept, x, y, &mut Pram::new(gp, Model::Crew));
    }
    let plain_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut sh = ShadowMem::new(Model::Crew);
    let t0 = Instant::now();
    for &(x, y) in &pts {
        let _ = locate_coop_traced(&sept, x, y, &mut Pram::new(gp, Model::Crew), &mut sh);
    }
    row(
        &mut t,
        "geometry-locate f=1024 p=2^20 (30 queries)",
        "CREW",
        plain_ms,
        t0.elapsed().as_secs_f64() * 1e3,
        &mut sh,
    );

    t.note("untraced = production entry point (NoTrace hooks compile out); traced = same code under ShadowMem provenance recording");
    t.note("all rows must be violation-free; `fc-analyze --gate` enforces the same configurations in CI");
    t
}

/// E-serve — fc-serve under load: clean serving vs static faults vs
/// dynamic-buffer faults vs processor-kill chaos, one fresh service per
/// row. Every answer is verified against the sequential oracle on the
/// generation that served it; the `wrong` column must stay 0.
pub fn eserve() -> Table {
    use fc_resilience::{Fault, FaultPlan, FaultSpec};
    use fc_serve::{ServeConfig, Service};
    use std::time::Duration;

    #[derive(Clone, Copy)]
    enum Chaos {
        None,
        Static,
        Dynamic,
        Kills,
    }
    let scenarios: [(&str, Chaos); 4] = [
        ("clean", Chaos::None),
        ("static faults", Chaos::Static),
        ("dynamic faults", Chaos::Dynamic),
        ("kill schedules", Chaos::Kills),
    ];

    let mut t = Table::new(
        "E-serve (fc-serve): 400 verified queries per scenario, n = 3000, height 6, p = 2^10",
        &[
            "scenario",
            "exact",
            "degraded",
            "typed errors",
            "wrong",
            "corruption det.",
            "audits dirty",
            "repairs",
            "gens",
        ],
    );

    for (row_seed, (name, chaos)) in scenarios.iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(SEED + 60 + row_seed as u64);
        let tree = gen::balanced_binary(6, 3000, SizeDist::Uniform, &mut rng);
        let cfg = ServeConfig {
            workers: 2,
            queue_cap: 64,
            default_deadline: Duration::from_secs(30),
            audit_interval: Duration::from_millis(10),
            processors: 1 << 10,
            ..ServeConfig::default()
        };
        let svc = Service::start(tree, ParamMode::Auto, cfg);
        let leaves = svc.snapshot().st.tree().leaves();
        let (mut exact, mut degraded, mut errors, mut wrong) = (0u64, 0u64, 0u64, 0u64);
        for q in 0..400usize {
            match chaos {
                Chaos::Static if q % 100 == 50 => {
                    svc.inject(&FaultSpec::one_of_each(), rng.gen());
                }
                Chaos::Dynamic if q % 100 == 50 => {
                    svc.inject(&FaultSpec::one_of_each_dynamic(), rng.gen());
                }
                // A deterministic synchronous audit sweep partway through
                // each injection window: buffer-only corruption never
                // perturbs a query, so without this the background auditor
                // may not wake before the (fast) scenario completes.
                Chaos::Static | Chaos::Dynamic if q % 100 == 80 => {
                    svc.audit_blocking();
                }
                Chaos::Kills if q % 40 == 20 => {
                    svc.arm_kills(FaultPlan {
                        seed: q as u64,
                        faults: vec![Fault::KillProcessors {
                            at_round: rng.gen_range(0..3),
                            count: 1 << 9,
                        }],
                    });
                }
                _ => {}
            }
            if q % 25 == 10 {
                let node =
                    fc_catalog::NodeId(rng.gen_range(0..svc.snapshot().st.tree().len()) as u32);
                svc.update(fc_coop::dynamic::UpdateOp::Insert(
                    node,
                    rng.gen_range(10_000_000..20_000_000i64),
                ));
            }
            let leaf = leaves[rng.gen_range(0..leaves.len())];
            let y = rng.gen_range(-5..20_000_005i64);
            match svc.query_blocking(leaf, y, None) {
                Ok(ok) => {
                    let oracle: Vec<Option<i64>> = ok
                        .path
                        .iter()
                        .map(|&node| {
                            let cat = ok.gen.st.tree().catalog(node);
                            cat.get(cat.partition_point(|k| *k < y)).copied()
                        })
                        .collect();
                    if ok.answers == oracle {
                        if ok.degraded {
                            degraded += 1;
                        } else {
                            exact += 1;
                        }
                    } else {
                        wrong += 1;
                    }
                }
                Err(_) => errors += 1,
            }
        }
        let stats = svc.shutdown();
        assert_eq!(
            wrong, 0,
            "scenario `{name}` produced a silently wrong answer"
        );
        t.row(vec![
            name.to_string(),
            exact.to_string(),
            degraded.to_string(),
            errors.to_string(),
            wrong.to_string(),
            stats.corruption_detected.to_string(),
            stats.audits_dirty.to_string(),
            stats.repairs.to_string(),
            stats.generations_published.to_string(),
        ]);
    }
    t.note("every Ok answer is re-checked against the sequential oracle on the generation that served it (QueryOk::gen)");
    t.note("faulted rows trade latency (degraded reads, retries, audits) for correctness — `wrong` stays 0 by contract");
    t.note("kill schedules are absorbed by the search's surviving processors (wider per-processor windows), so they cost steps, not answers");
    t
}

/// All experiments, in DESIGN.md order.
pub fn all() -> Vec<(&'static str, fn() -> Table)> {
    vec![
        ("t1", t1_explicit as fn() -> Table),
        ("t1i", t1_implicit),
        ("prep", prep),
        ("space", space),
        ("lemma1", lemma1),
        ("t2", t2),
        ("t3", t3),
        ("t4", t4),
        ("t5", t5),
        ("t6", t6),
        ("t6r", t6r),
        ("t6e", t6e),
        ("c2", c2),
        ("fig1", fig1),
        ("fig2", fig2),
        ("fig3", fig3),
        ("fig4", fig4),
        ("fig5", fig5),
        ("fig6", fig6),
        ("ablation-b", ablation_b),
        ("ablation-modes", ablation_modes),
        ("cd", cd_general),
        ("dyn", dynamic),
        ("op3", op3),
        ("fault", efault),
        ("discipline", discipline),
        ("serve", eserve),
    ]
}
