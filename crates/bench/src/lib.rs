//! # fc-bench — the experiment harness
//!
//! One function per experiment in DESIGN.md's index; each regenerates the
//! quantity the corresponding theorem/lemma/figure of the paper bounds or
//! illustrates, and returns a printable [`Table`]. The `harness` binary
//! prints any subset:
//!
//! ```text
//! cargo run -p fc-bench --release --bin harness            # everything
//! cargo run -p fc-bench --release --bin harness -- t1 t4   # a subset
//! ```
//!
//! The measured quantity is always **CREW/EREW PRAM steps** from
//! `fc-pram`'s cost model (plus words for the space experiments) — the
//! paper is a theory paper whose evaluation *is* its theorems, so the
//! reproduction measures the bounded quantities directly (see DESIGN.md,
//! "Faithfulness notes").

#![warn(missing_docs)]
#![allow(clippy::type_complexity)]

pub mod experiments;
pub mod snapshot;
pub mod table;

pub use table::Table;
