//! Minimal aligned-column table printing for the harness.

/// A printable table: a title, column headers, and string rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment title (includes the paper artifact it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as CSV (headers + rows; notes become `#`-prefixed trailer
    /// lines) for downstream plotting.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "20000".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long_header"));
        assert!(s.contains("note: a note"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
