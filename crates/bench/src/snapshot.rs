//! Core and service-level performance snapshots (`BENCH_core.json` /
//! `BENCH_serve.json` / `BENCH_shard.json` / `BENCH_net.json` /
//! `BENCH_store.json`).
//!
//! The paper experiments in [`crate::experiments`] measure PRAM steps; the
//! snapshots here measure the *systems* layers in wall-clock terms: build
//! time, sustained throughput, p50/p99 query latency, and shed rate, for
//! the single `fc_serve::Service`, the sharded `fc_shard::ShardCluster`
//! batched scatter/gather path, and the `fc-net` TCP ingress (the same
//! workload over live loopback sockets) over the same uniform workload —
//! plus the durability layer (`fc-store`): snapshot write time, WAL
//! append throughput, and full crash-recovery time over the same tree.
//!
//! JSON is hand-rolled (flat number/string fields only) so the snapshot
//! carries no serialization dependency. Regenerate with:
//!
//! ```text
//! cargo run -p fc-bench --release --bin snapshot -- <out-dir>
//! # or, alongside the paper tables:
//! cargo run -p fc-bench --release --bin harness -- --snapshot <out-dir>
//! ```
//!
//! `FC_BENCH_QUERIES` overrides the workload size (default 20 000; CI uses
//! 100 000). With `FC_BENCH_ASSERT=1` *and* ≥ 4 cores, the shard snapshot
//! asserts the acceptance bound: batched cluster throughput must be at
//! least the single-service throughput on the uniform workload.
//!
//! The committed snapshots at the repo root are the regression baseline:
//! the `compare` binary fails CI when a regenerated throughput-class
//! field drops more than `FC_BENCH_TOLERANCE` (default 30%) below the
//! committed value.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::ParamMode;
use fc_serve::{ServeConfig, Service};
use fc_shard::{ShardCluster, ShardConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Default workload size when `FC_BENCH_QUERIES` is unset.
pub const DEFAULT_QUERIES: usize = 20_000;
/// Queries sampled (blocking, one at a time) for the latency percentiles.
const LATENCY_SAMPLE: usize = 512;
/// Benchmark tree: depth and per-tree total key count.
const TREE_DEPTH: u32 = 6;
const TREE_KEYS: usize = 6_000;
/// Key universe the uniform workload draws from.
const KEY_SPAN: i64 = 140_000;

/// One snapshot of a serving stack's wall-clock behaviour.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Which stack: `"serve"` or `"shard"`.
    pub name: String,
    /// Cores visible to the process (`std::thread::available_parallelism`).
    pub cores: usize,
    /// Wall-clock milliseconds to build the stack (preprocessing + spawn).
    pub build_ms: f64,
    /// Queries in the throughput workload.
    pub queries: usize,
    /// Sustained throughput over the workload, queries/second.
    pub throughput_qps: f64,
    /// Median single-query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile single-query latency, microseconds.
    pub p99_us: f64,
    /// Fraction of workload queries shed or erred (0.0 on a healthy run).
    pub shed_rate: f64,
}

impl Snapshot {
    /// Serialize as a flat JSON object (stable field order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"name\": \"{}\",\n  \"cores\": {},\n  \"build_ms\": {:.3},\n  \
             \"queries\": {},\n  \"throughput_qps\": {:.1},\n  \"p50_us\": {:.2},\n  \
             \"p99_us\": {:.2},\n  \"shed_rate\": {:.6}\n}}\n",
            self.name,
            self.cores,
            self.build_ms,
            self.queries,
            self.throughput_qps,
            self.p50_us,
            self.p99_us,
            self.shed_rate
        )
    }
}

/// Workload size: `FC_BENCH_QUERIES` or [`DEFAULT_QUERIES`].
pub fn workload_size() -> usize {
    std::env::var("FC_BENCH_QUERIES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_QUERIES)
        .max(LATENCY_SAMPLE)
}

fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn bench_tree() -> CatalogTree<i64> {
    let mut rng = SmallRng::seed_from_u64(0xBE_5EED);
    gen::balanced_binary(TREE_DEPTH, TREE_KEYS, SizeDist::Uniform, &mut rng)
}

/// The uniform workload: `n` (leaf, key) successor queries.
fn workload(tree: &CatalogTree<i64>, n: usize) -> Vec<(NodeId, i64)> {
    let leaves = tree.leaves();
    let mut rng = SmallRng::seed_from_u64(0x10AD);
    (0..n)
        .map(|_| {
            (
                leaves[rng.gen_range(0..leaves.len())],
                rng.gen_range(0..KEY_SPAN),
            )
        })
        .collect()
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx.min(sorted_us.len() - 1)]
}

/// Snapshot the single `fc_serve::Service`: all `n` queries submitted
/// asynchronously (the worker pool is the parallelism), then drained.
pub fn measure_serve(n: usize) -> Snapshot {
    let cores = cores();
    let tree = bench_tree();
    let queries = workload(&tree, n);
    let cfg = ServeConfig {
        workers: cores,
        queue_cap: n + LATENCY_SAMPLE,
        default_deadline: Duration::from_secs(30),
        audit_interval: Duration::from_secs(3600),
        processors: 1 << 10,
        ..ServeConfig::default()
    };
    let t0 = Instant::now();
    let svc = Service::start(tree, ParamMode::Auto, cfg);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Latency sample: blocking queries, one at a time.
    let mut lat_us: Vec<f64> = Vec::with_capacity(LATENCY_SAMPLE);
    for &(leaf, y) in queries.iter().take(LATENCY_SAMPLE) {
        let t = Instant::now();
        let _ = svc.query_blocking(leaf, y, None);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat_us.sort_by(f64::total_cmp);

    // Throughput: submit everything, then drain every response channel.
    let t1 = Instant::now();
    let mut pending = Vec::with_capacity(n);
    let mut shed = 0usize;
    for &(leaf, y) in &queries {
        match svc.submit(leaf, y, None) {
            Ok(rx) => pending.push(rx),
            Err(_) => shed += 1,
        }
    }
    let mut failed = 0usize;
    for rx in pending {
        match rx.recv() {
            Ok(Ok(_)) => {}
            _ => failed += 1,
        }
    }
    let secs = t1.elapsed().as_secs_f64();
    svc.shutdown();
    Snapshot {
        name: "serve".into(),
        cores,
        build_ms,
        queries: n,
        throughput_qps: n as f64 / secs.max(1e-9),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        shed_rate: (shed + failed) as f64 / n as f64,
    }
}

/// Snapshot the sharded cluster's batched scatter/gather path: the same
/// workload goes through [`ShardCluster::query_batch`] in batches sized to
/// keep every batch thread busy.
pub fn measure_shard(n: usize) -> Snapshot {
    let cores = cores();
    let tree = bench_tree();
    let queries = workload(&tree, n);
    let cfg = ShardConfig {
        shards: 4,
        replicas: 2,
        serve: ServeConfig {
            workers: 1,
            queue_cap: n + LATENCY_SAMPLE,
            default_deadline: Duration::from_secs(30),
            audit_interval: Duration::from_secs(3600),
            processors: 1 << 10,
            ..ServeConfig::default()
        },
        batch_threads: cores,
        default_deadline: Duration::from_secs(60),
        ..ShardConfig::default()
    };
    let t0 = Instant::now();
    let cluster = ShardCluster::start(&tree, ParamMode::Auto, cfg);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut lat_us: Vec<f64> = Vec::with_capacity(LATENCY_SAMPLE);
    for &(leaf, y) in queries.iter().take(LATENCY_SAMPLE) {
        let t = Instant::now();
        let _ = cluster.query_blocking(leaf, y, None);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat_us.sort_by(f64::total_cmp);

    let batch = (n / cores.max(1)).clamp(1024, 16_384);
    let t1 = Instant::now();
    let mut failed = 0usize;
    for chunk in queries.chunks(batch) {
        for res in cluster.query_batch(chunk, None) {
            if res.is_err() {
                failed += 1;
            }
        }
    }
    let secs = t1.elapsed().as_secs_f64();
    cluster.shutdown();
    Snapshot {
        name: "shard".into(),
        cores,
        build_ms,
        queries: n,
        throughput_qps: n as f64 / secs.max(1e-9),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        shed_rate: failed as f64 / n as f64,
    }
}

/// One snapshot of the `fc-catalog` core's wall-clock behaviour: build
/// times for the three construction schedules and the single-thread
/// descent cost through the flat arena (`BENCH_core.json`).
#[derive(Debug, Clone)]
pub struct CoreSnapshot {
    /// Always `"core"`.
    pub name: String,
    /// Cores visible to the process.
    pub cores: usize,
    /// Keys in the benchmark tree.
    pub tree_keys: usize,
    /// Queries in the descent workload.
    pub queries: usize,
    /// Wall-clock ms for the level-synchronous build.
    pub build_level_ms: f64,
    /// Wall-clock ms for the bidirectional (Lemma 1) build.
    pub build_bidir_ms: f64,
    /// Wall-clock ms for the pipelined (ACG) build.
    pub build_pipelined_ms: f64,
    /// Single-thread descent cost, nanoseconds per full root-to-leaf
    /// query (per-query timer: the latency view).
    pub descent_ns: f64,
    /// Batched single-thread throughput, queries/second (one timer
    /// around the whole workload: the pipeline view).
    pub search_qps: f64,
}

impl CoreSnapshot {
    /// Serialize as a flat JSON object (stable field order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"name\": \"{}\",\n  \"cores\": {},\n  \"tree_keys\": {},\n  \
             \"queries\": {},\n  \"build_level_ms\": {:.3},\n  \"build_bidir_ms\": {:.3},\n  \
             \"build_pipelined_ms\": {:.3},\n  \"descent_ns\": {:.1},\n  \
             \"search_qps\": {:.1}\n}}\n",
            self.name,
            self.cores,
            self.tree_keys,
            self.queries,
            self.build_level_ms,
            self.build_bidir_ms,
            self.build_pipelined_ms,
            self.descent_ns,
            self.search_qps
        )
    }
}

/// Microbench the catalog core itself, below the serving stack: the three
/// build schedules on the benchmark tree, then `n` single-thread
/// root-to-leaf descents through `search_path_fc`.
pub fn measure_core(n: usize) -> CoreSnapshot {
    use fc_catalog::search::{search_path_fc, search_path_fc_into};
    use fc_catalog::CascadedTree;

    let cores = cores();
    let tree = bench_tree();

    let t = Instant::now();
    let level = CascadedTree::build(bench_tree(), 4);
    let build_level_ms = t.elapsed().as_secs_f64() * 1e3;
    drop(level);

    let t = Instant::now();
    let fc = CascadedTree::build_bidir(bench_tree(), 4);
    let build_bidir_ms = t.elapsed().as_secs_f64() * 1e3;

    let t = Instant::now();
    let (piped, _) = fc_catalog::pipeline::build_pipelined(bench_tree(), 4, None);
    let build_pipelined_ms = t.elapsed().as_secs_f64() * 1e3;
    drop(piped);

    // Pre-resolve the query paths so the descent loop measures the
    // cascade walk, not path reconstruction.
    let queries = workload(&tree, n);
    let paths: Vec<Vec<NodeId>> = tree
        .leaves()
        .iter()
        .map(|&l| tree.path_from_root(l))
        .collect();
    let leaf_slot: std::collections::HashMap<NodeId, usize> = tree
        .leaves()
        .iter()
        .enumerate()
        .map(|(i, &l)| (l, i))
        .collect();

    // Latency view: per-query timer over a sample.
    let mut lat_ns = 0.0f64;
    let sample = LATENCY_SAMPLE.min(n);
    for &(leaf, y) in queries.iter().take(sample) {
        let path = &paths[leaf_slot[&leaf]];
        let t = Instant::now();
        let out = search_path_fc(&fc, path, y, None);
        lat_ns += t.elapsed().as_secs_f64() * 1e9;
        std::hint::black_box(out);
    }

    // Pipeline view: one timer around the whole workload, reusing a
    // single result buffer so the loop is allocation-free.
    let mut results = Vec::new();
    let t = Instant::now();
    for &(leaf, y) in &queries {
        let path = &paths[leaf_slot[&leaf]];
        search_path_fc_into(&fc, path, y, None, &mut results);
        std::hint::black_box(&results);
    }
    let secs = t.elapsed().as_secs_f64();

    CoreSnapshot {
        name: "core".into(),
        cores,
        tree_keys: TREE_KEYS,
        queries: n,
        build_level_ms,
        build_bidir_ms,
        build_pipelined_ms,
        descent_ns: lat_ns / sample.max(1) as f64,
        search_qps: n as f64 / secs.max(1e-9),
    }
}

/// One snapshot of the durability layer's wall-clock behaviour.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    /// Always `"store"`.
    pub name: String,
    /// Cores visible to the process.
    pub cores: usize,
    /// Keys in the benchmark tree the snapshot serializes.
    pub tree_keys: usize,
    /// Ops appended through the WAL (and replayed by recovery).
    pub wal_ops: usize,
    /// Wall-clock milliseconds to persist one snapshot (encode + write +
    /// atomic rename; fsync off for determinism across CI disks).
    pub snapshot_ms: f64,
    /// Sustained WAL append throughput, ops/second (batches of 64).
    pub wal_ops_per_s: f64,
    /// Wall-clock milliseconds for full crash recovery: newest snapshot +
    /// replay of every logged op + forced rebuild + blame audit.
    pub recover_ms: f64,
    /// Records the recovery replayed (sanity: must equal the batches).
    pub replayed_records: u64,
}

impl StoreSnapshot {
    /// Serialize as a flat JSON object (stable field order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"name\": \"{}\",\n  \"cores\": {},\n  \"tree_keys\": {},\n  \
             \"wal_ops\": {},\n  \"snapshot_ms\": {:.3},\n  \"wal_ops_per_s\": {:.1},\n  \
             \"recover_ms\": {:.3},\n  \"replayed_records\": {}\n}}\n",
            self.name,
            self.cores,
            self.tree_keys,
            self.wal_ops,
            self.snapshot_ms,
            self.wal_ops_per_s,
            self.recover_ms,
            self.replayed_records
        )
    }
}

/// Snapshot the durability layer: persist the benchmark tree, stream `n`
/// update ops through the WAL, then time a full recovery of the lot.
pub fn measure_store(n: usize) -> StoreSnapshot {
    use fc_coop::dynamic::UpdateOp;
    use fc_store::{Store, StoreConfig};

    let cores = cores();
    let tree = bench_tree();
    let dir = std::env::temp_dir().join(format!("fc-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = StoreConfig {
        fsync: false, // measure the write path, not the CI runner's disk
        ..StoreConfig::default()
    };
    let store = Store::<i64>::open(&dir, cfg).expect("open store");

    let t0 = Instant::now();
    store.persist_snapshot(&tree, 0).expect("persist snapshot");
    let snapshot_ms = t0.elapsed().as_secs_f64() * 1e3;

    // WAL throughput: n ops in batches of 64, mixed insert/remove over
    // the same key universe the serving workload uses.
    let nodes = tree.len() as u32;
    let mut rng = SmallRng::seed_from_u64(0x57_04E);
    let ops: Vec<UpdateOp<i64>> = (0..n)
        .map(|_| {
            let node = NodeId(rng.gen_range(0..nodes));
            let key = rng.gen_range(0..KEY_SPAN);
            if rng.gen_bool(0.8) {
                UpdateOp::Insert(node, key)
            } else {
                UpdateOp::Remove(node, key)
            }
        })
        .collect();
    let t1 = Instant::now();
    let mut batches = 0u64;
    for chunk in ops.chunks(64) {
        store.append_batch(chunk).expect("append batch");
        batches += 1;
    }
    let wal_secs = t1.elapsed().as_secs_f64();
    drop(store);

    let t2 = Instant::now();
    let rec = fc_store::recover::<i64>(&dir).expect("recover");
    let recover_ms = t2.elapsed().as_secs_f64() * 1e3;
    assert_eq!(rec.replayed_records, batches, "recovery replayed the log");
    let _ = std::fs::remove_dir_all(&dir);

    StoreSnapshot {
        name: "store".into(),
        cores,
        tree_keys: TREE_KEYS,
        wal_ops: n,
        snapshot_ms,
        wal_ops_per_s: n as f64 / wal_secs.max(1e-9),
        recover_ms,
        replayed_records: rec.replayed_records,
    }
}

/// Performance snapshot of the dynamic-maintenance layer (fc-dyn): the
/// incremental per-key write path against the clone-and-rebuild
/// baseline, on the same tree and update stream.
#[derive(Debug, Clone)]
pub struct DynSnapshot {
    /// Always `"dyn"`.
    pub name: String,
    /// Cores visible to the process.
    pub cores: usize,
    /// Keys in the benchmark tree.
    pub tree_keys: usize,
    /// Updates pushed through the incremental path.
    pub updates: usize,
    /// Sustained incremental update throughput, ops/second.
    pub update_ops_per_s: f64,
    /// Clone-and-rebuild baseline throughput, ops/second (the buffered
    /// mode force-rebuilt every 64-op batch — "rebuild the world").
    pub baseline_ops_per_s: f64,
    /// `update_ops_per_s / baseline_ops_per_s`.
    pub speedup: f64,
    /// Mixed 1:1 read/write throughput on the incremental structure,
    /// ops/second (each op is one update or one path search).
    pub mixed_ops_per_s: f64,
    /// Incremental per-update latency, microseconds.
    pub p50_us: f64,
    /// Incremental per-update tail latency, microseconds.
    pub p99_us: f64,
    /// Fallback rebuilds per incremental update (density/corruption
    /// compactions; ~0 on a clean uniform workload).
    pub fallback_rate: f64,
}

impl DynSnapshot {
    /// Serialize as a flat JSON object (stable field order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"name\": \"{}\",\n  \"cores\": {},\n  \"tree_keys\": {},\n  \
             \"updates\": {},\n  \"update_ops_per_s\": {:.1},\n  \
             \"baseline_ops_per_s\": {:.1},\n  \"speedup\": {:.2},\n  \
             \"mixed_ops_per_s\": {:.1},\n  \"p50_us\": {:.2},\n  \"p99_us\": {:.2},\n  \
             \"fallback_rate\": {:.6}\n}}\n",
            self.name,
            self.cores,
            self.tree_keys,
            self.updates,
            self.update_ops_per_s,
            self.baseline_ops_per_s,
            self.speedup,
            self.mixed_ops_per_s,
            self.p50_us,
            self.p99_us,
            self.fallback_rate
        )
    }
}

/// The mixed update stream both dynamic modes consume: per-key inserts
/// and deletes, uniform over nodes and the serving key universe.
fn dyn_ops(tree: &CatalogTree<i64>, n: usize) -> Vec<fc_coop::dynamic::UpdateOp<i64>> {
    use fc_coop::dynamic::UpdateOp;
    let nodes = tree.len() as u32;
    let mut rng = SmallRng::seed_from_u64(0xD1_0B5);
    (0..n)
        .map(|_| {
            let node = NodeId(rng.gen_range(0..nodes));
            let key = rng.gen_range(0..KEY_SPAN);
            if rng.gen_bool(0.7) {
                UpdateOp::Insert(node, key)
            } else {
                UpdateOp::Remove(node, key)
            }
        })
        .collect()
}

/// Snapshot the dynamic layer: `n` per-key updates through the fc-dyn
/// incremental path (timed individually for the latency percentiles),
/// the same stream through the clone-and-rebuild baseline (buffered mode
/// force-rebuilt every 64-op batch; capped at 2048 ops — each batch pays
/// a full O(n) rebuild, and throughput per op is flat in the stream
/// length), and a 1:1 mixed read/write interleaving.
pub fn measure_dyn(n: usize) -> DynSnapshot {
    use fc_coop::dynamic::{DynamicCoop, UpdateOp};
    use fc_pram::{Model, Pram};

    let cores = cores();
    let tree = bench_tree();
    let ops = dyn_ops(&tree, n);
    let mut pram = Pram::new(1 << 16, Model::Crew);

    // Incremental path: every op patches bridges/samples along one
    // node-to-root path; per-op wall clock feeds the percentiles.
    let mut dy = DynamicCoop::new_incremental(tree.clone(), ParamMode::Auto, 0.25);
    let mut lat_us: Vec<f64> = Vec::with_capacity(n);
    let t0 = Instant::now();
    for op in &ops {
        let t = Instant::now();
        match *op {
            UpdateOp::Insert(node, key) => dy.insert(node, key, &mut pram),
            UpdateOp::Remove(node, key) => dy.remove(node, key, &mut pram),
        }
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let incr_secs = t0.elapsed().as_secs_f64();
    let gs = dy.gen_stats();
    assert_eq!(gs.audit_failures, 0, "bench updates must audit clean");
    lat_us.sort_by(|a, b| a.total_cmp(b));

    // Clone-and-rebuild baseline: same stream, buffered mode, a forced
    // full rebuild after every 64-op batch.
    let base_n = n.min(2_048);
    let mut base = DynamicCoop::new(tree.clone(), ParamMode::Auto, f64::INFINITY);
    let t1 = Instant::now();
    for chunk in ops[..base_n].chunks(64) {
        base.apply_batch(chunk, &mut pram);
        base.force_rebuild(&mut pram);
    }
    let base_secs = t1.elapsed().as_secs_f64();

    // Mixed 1:1 read/write on the incremental structure.
    let reads = workload(&tree, n.min(ops.len()));
    let t2 = Instant::now();
    let mut mixed = 0usize;
    for (op, &(leaf, y)) in ops.iter().zip(&reads) {
        match *op {
            UpdateOp::Insert(node, key) => dy.insert(node, key, &mut pram),
            UpdateOp::Remove(node, key) => dy.remove(node, key, &mut pram),
        }
        let path = dy.structure().tree().path_from_root(leaf);
        let _ = dy.search(&path, y, &mut pram);
        mixed += 2;
    }
    let mixed_secs = t2.elapsed().as_secs_f64();

    let update_ops_per_s = n as f64 / incr_secs.max(1e-9);
    let baseline_ops_per_s = base_n as f64 / base_secs.max(1e-9);
    let snap = DynSnapshot {
        name: "dyn".into(),
        cores,
        tree_keys: TREE_KEYS,
        updates: n,
        update_ops_per_s,
        baseline_ops_per_s,
        speedup: update_ops_per_s / baseline_ops_per_s.max(1e-9),
        mixed_ops_per_s: mixed as f64 / mixed_secs.max(1e-9),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        fallback_rate: gs.fallback_rebuilds as f64 / (n as f64).max(1.0),
    };
    let assert_on = std::env::var("FC_BENCH_ASSERT").is_ok_and(|v| v == "1");
    if assert_on {
        assert!(
            snap.speedup >= 10.0,
            "acceptance: incremental updates must sustain >= 10x the \
             clone-and-rebuild baseline ({:.0} vs {:.0} ops/s, {:.1}x)",
            snap.update_ops_per_s,
            snap.baseline_ops_per_s,
            snap.speedup
        );
    }
    snap
}

/// Snapshot the network ingress: the same workload pushed through a live
/// `fc_net::NetServer` over loopback TCP by a small pool of wire clients
/// (one socket each, strict request/reply — the protocol's concurrency
/// unit is the connection). Latency percentiles come from a
/// single-connection blocking sample, so they price one full wire round
/// trip: encode, write, server decode, cluster query, reply, decode.
pub fn measure_net(n: usize) -> Snapshot {
    use fc_net::{ClientConfig, NetClient, NetConfig, NetServer};
    use std::sync::Arc;

    let cores = cores();
    let tree = bench_tree();
    let queries = workload(&tree, n);
    let cfg = ShardConfig {
        shards: 4,
        replicas: 2,
        serve: ServeConfig {
            workers: 1,
            queue_cap: n + LATENCY_SAMPLE,
            default_deadline: Duration::from_secs(30),
            audit_interval: Duration::from_secs(3600),
            processors: 1 << 10,
            ..ServeConfig::default()
        },
        batch_threads: cores,
        default_deadline: Duration::from_secs(60),
        ..ShardConfig::default()
    };
    let t0 = Instant::now();
    let cluster = Arc::new(ShardCluster::start(&tree, ParamMode::Auto, cfg));
    let server = NetServer::start(
        Arc::clone(&cluster),
        "127.0.0.1:0",
        NetConfig {
            max_conns: 2 * cores + 8,
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let addr = server.local_addr();
    let ccfg = ClientConfig {
        read_timeout: Duration::from_secs(30),
        ..ClientConfig::default()
    };

    // Latency sample: one connection, strictly blocking round trips.
    let mut client = NetClient::connect(addr, ccfg.clone()).expect("connect");
    let mut lat_us: Vec<f64> = Vec::with_capacity(LATENCY_SAMPLE);
    for &(leaf, y) in queries.iter().take(LATENCY_SAMPLE) {
        let t = Instant::now();
        let _ = client.query(leaf.0, y, None);
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    lat_us.sort_by(f64::total_cmp);
    drop(client);

    // Throughput: the workload split across a pool of wire clients.
    let pool = cores.clamp(2, 8);
    let chunk = n.div_ceil(pool);
    let t1 = Instant::now();
    let errs: usize = std::thread::scope(|s| {
        let handles: Vec<_> = queries
            .chunks(chunk)
            .map(|slice| {
                let ccfg = ccfg.clone();
                s.spawn(move || {
                    let mut errs = 0usize;
                    let mut c = match NetClient::connect(addr, ccfg) {
                        Ok(c) => c,
                        Err(_) => return slice.len(),
                    };
                    for &(leaf, y) in slice {
                        if c.query(leaf.0, y, None).is_err() {
                            errs += 1;
                        }
                    }
                    errs
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    });
    let secs = t1.elapsed().as_secs_f64();
    let report = server.drain();
    assert_eq!(report.forced, 0, "bench drain must be clean: {report:?}");
    // The drain joined the accept loop and every handler, so this is the
    // last Arc; fall back to drop if a straggler still holds one.
    if let Ok(cluster) = Arc::try_unwrap(cluster) {
        cluster.shutdown();
    }
    Snapshot {
        name: "net".into(),
        cores,
        build_ms,
        queries: n,
        throughput_qps: n as f64 / secs.max(1e-9),
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        shed_rate: errs as f64 / n as f64,
    }
}

/// Run all five snapshots, write `BENCH_core.json`, `BENCH_serve.json`,
/// `BENCH_shard.json`, `BENCH_net.json`, and `BENCH_store.json` into
/// `dir`, and (when `FC_BENCH_ASSERT=1` on a ≥ 4-core machine) enforce
/// the acceptance bound. Returns the serving-stack snapshots
/// (serve, shard, net, store).
pub fn write_snapshots(
    dir: &std::path::Path,
) -> std::io::Result<(Snapshot, Snapshot, Snapshot, StoreSnapshot, DynSnapshot)> {
    let n = workload_size();
    std::fs::create_dir_all(dir)?;
    let core = measure_core(n);
    std::fs::write(dir.join("BENCH_core.json"), core.to_json())?;
    let serve = measure_serve(n);
    std::fs::write(dir.join("BENCH_serve.json"), serve.to_json())?;
    let shard = measure_shard(n);
    std::fs::write(dir.join("BENCH_shard.json"), shard.to_json())?;
    let net = measure_net(n);
    std::fs::write(dir.join("BENCH_net.json"), net.to_json())?;
    let store = measure_store(n);
    std::fs::write(dir.join("BENCH_store.json"), store.to_json())?;
    let dyn_snap = measure_dyn(n);
    std::fs::write(dir.join("BENCH_dyn.json"), dyn_snap.to_json())?;
    println!(
        "core   level {:>7.1} ms | bidir {:>7.1} ms | piped {:>7.1} ms | \
         descent {:>7.0} ns | {:>10.0} q/s",
        core.build_level_ms,
        core.build_bidir_ms,
        core.build_pipelined_ms,
        core.descent_ns,
        core.search_qps
    );
    let assert_on = std::env::var("FC_BENCH_ASSERT").is_ok_and(|v| v == "1");
    if assert_on && serve.cores >= 4 {
        assert!(
            shard.throughput_qps >= serve.throughput_qps,
            "acceptance: batched cluster throughput ({:.0} q/s) must be >= \
             single-service throughput ({:.0} q/s) on {} cores",
            shard.throughput_qps,
            serve.throughput_qps,
            serve.cores
        );
    }
    Ok((serve, shard, net, store, dyn_snap))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_measure_and_serialize() {
        // Tiny workload: this is a plumbing test, not a benchmark.
        let serve = measure_serve(LATENCY_SAMPLE);
        let shard = measure_shard(LATENCY_SAMPLE);
        for s in [&serve, &shard] {
            assert!(s.throughput_qps > 0.0, "{s:?}");
            assert!(s.p99_us >= s.p50_us, "{s:?}");
            assert!(s.shed_rate < 0.5, "{s:?}");
            let json = s.to_json();
            assert!(json.contains(&format!("\"name\": \"{}\"", s.name)));
            assert!(json.contains("\"throughput_qps\""));
        }
        let net = measure_net(LATENCY_SAMPLE);
        assert!(net.throughput_qps > 0.0, "{net:?}");
        assert!(net.p99_us >= net.p50_us, "{net:?}");
        assert_eq!(net.shed_rate, 0.0, "wire bench shed on loopback: {net:?}");
        assert!(net.to_json().contains("\"name\": \"net\""));
        let store = measure_store(LATENCY_SAMPLE);
        assert!(store.wal_ops_per_s > 0.0, "{store:?}");
        assert!(store.recover_ms > 0.0, "{store:?}");
        assert_eq!(store.replayed_records, (LATENCY_SAMPLE as u64).div_ceil(64));
        let json = store.to_json();
        assert!(json.contains("\"wal_ops_per_s\""));
        assert!(json.contains("\"recover_ms\""));
    }

    #[test]
    fn dyn_snapshot_measures_and_serializes() {
        let dy = measure_dyn(LATENCY_SAMPLE);
        assert!(dy.update_ops_per_s > 0.0, "{dy:?}");
        assert!(dy.baseline_ops_per_s > 0.0, "{dy:?}");
        assert!(dy.mixed_ops_per_s > 0.0, "{dy:?}");
        assert!(dy.p99_us >= dy.p50_us, "{dy:?}");
        assert!(dy.fallback_rate >= 0.0, "{dy:?}");
        let json = dy.to_json();
        assert!(json.contains("\"name\": \"dyn\""));
        assert!(json.contains("\"update_ops_per_s\""));
        assert!(json.contains("\"speedup\""));
    }

    #[test]
    fn core_snapshot_measures_and_serializes() {
        let core = measure_core(LATENCY_SAMPLE);
        assert!(core.search_qps > 0.0, "{core:?}");
        assert!(core.descent_ns > 0.0, "{core:?}");
        assert!(core.build_level_ms > 0.0, "{core:?}");
        assert!(core.build_bidir_ms > 0.0, "{core:?}");
        assert!(core.build_pipelined_ms > 0.0, "{core:?}");
        let json = core.to_json();
        assert!(json.contains("\"name\": \"core\""));
        assert!(json.contains("\"search_qps\""));
        assert!(json.contains("\"descent_ns\""));
    }

    #[test]
    fn percentiles_pick_the_right_ranks() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert!((percentile(&v, 0.5) - 50.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
