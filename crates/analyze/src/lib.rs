//! Discipline analyzer: replays the repo's real algorithms under
//! provenance-tracking shadow memory and checks the recorded access
//! schedules against the PRAM model each paper theorem claims.
//!
//! The analyzer never re-implements an algorithm: every driver in
//! [`replay`] calls the production entry point with a live
//! [`fc_pram::ShadowMem`] tracer ([`fc_pram::Tracer`] hooks compile to
//! nothing on the `NoTrace` fast path), asserts the traced result is
//! bit-identical to the untraced run, and harvests per-phase access
//! statistics plus every EREW/CREW violation with phase/round/pid blame.
//!
//! | algorithm | entry point | claimed model |
//! |---|---|---|
//! | level-synchronous cascade build | `CascadedTree::try_build_traced` | EREW |
//! | pipelined (ACG) cascade build | `build_pipelined_traced` | EREW |
//! | explicit cooperative search | `coop_search_explicit_traced` | CREW |
//! | Wyllie list ranking (publish/jump) | `list_rank_traced` | EREW |
//! | cooperative point location | `locate_coop_traced` | CREW |
//!
//! Two *canaries* keep the checker honest: the naive pointer-jumping list
//! ranking (reads live successor cells) must trip EREW checking, and the
//! cooperative search (shared query-cell reads) must trip EREW while
//! passing CREW. A gate run that fails to detect either is itself a
//! failure — see [`sweep::evaluate_gate`].

#![warn(missing_docs)]

pub mod replay;
pub mod sweep;

use fc_pram::shadow::Cell;
use fc_pram::{Model, PhaseStats, ShadowMem};

/// Human-readable model name.
pub fn model_name(m: Model) -> &'static str {
    match m {
        Model::Erew => "EREW",
        Model::Crew => "CREW",
        Model::Crcw => "CRCW",
    }
}

/// Per-phase access profile row.
#[derive(Debug, Clone)]
pub struct PhaseRow {
    /// Phase label (e.g. `"search/hop-windows"`).
    pub phase: &'static str,
    /// Statistics accumulated under that label.
    pub stats: PhaseStats,
}

/// Blame coordinates of the first violation of a dirty replay.
#[derive(Debug, Clone)]
pub struct Blame {
    /// Round of the first violation (0-based barrier count).
    pub round: u64,
    /// Phase label in effect.
    pub phase: &'static str,
    /// The conflicting logical cell, rendered `region[instance][index]`.
    pub cell: String,
    /// Rule broken (`concurrent-read`, `concurrent-write`, `read-write`).
    pub kind: &'static str,
    /// Sorted distinct pids involved.
    pub pids: Vec<usize>,
}

/// One replay case: an algorithm on one instance, checked against one model.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// Algorithm label (stable identifier, e.g. `"build-level"`).
    pub algorithm: &'static str,
    /// Instance description (tree shape / list shape / subdivision).
    pub shape: String,
    /// Processor count handed to the PRAM (0 when structural, e.g. builds).
    pub p: usize,
    /// Model the shadow memory enforced.
    pub checked: Model,
    /// Model the paper claims for this algorithm.
    pub claimed: Model,
    /// Whether this case is expected to be violation-free (canaries are
    /// expected dirty).
    pub expect_clean: bool,
    /// Traced results bit-matched the untraced run (and PRAM charges).
    pub matched: bool,
    /// No violations were detected.
    pub clean: bool,
    /// Number of violations detected.
    pub violations: usize,
    /// First violation's blame, if any.
    pub blame: Option<Blame>,
    /// Per-phase access profile.
    pub phases: Vec<PhaseRow>,
}

impl CaseReport {
    /// Whether the case satisfies its expectation (clean cases must be
    /// clean *and* bit-match; canaries must be dirty *with* blame).
    pub fn ok(&self) -> bool {
        if self.expect_clean {
            self.clean && self.matched
        } else {
            !self.clean && self.blame.is_some() && self.matched
        }
    }
}

/// Render a logical cell as `region[instance][index]`.
pub fn cell_name(c: Cell) -> String {
    format!("{}[{}][{}]", c.0, c.1, c.2)
}

/// Drain a finished [`ShadowMem`] into report fields: `(clean, violations,
/// blame, phases)`.
pub fn harvest(sh: &mut ShadowMem) -> (bool, usize, Option<Blame>, Vec<PhaseRow>) {
    let clean = sh.finish();
    let violations = sh.violations().len();
    let blame = sh.repro().map(|r| Blame {
        round: r.round,
        phase: r.phase,
        cell: cell_name(r.cell),
        kind: sh
            .violations()
            .first()
            .map(|v| v.kind.name())
            .unwrap_or("unknown"),
        pids: r.pids.clone(),
    });
    let phases = sh
        .phase_stats()
        .into_iter()
        .map(|(phase, stats)| PhaseRow { phase, stats })
        .collect();
    (clean, violations, blame, phases)
}

/// Serialize reports as a JSON array (hand-rolled: the workspace is
/// offline and carries no serde).
pub fn to_json(reports: &[CaseReport]) -> String {
    let mut s = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            s.push_str(",\n");
        }
        s.push_str("  {");
        push_kv(&mut s, "algorithm", &json_str(r.algorithm), true);
        push_kv(&mut s, "shape", &json_str(&r.shape), false);
        push_kv(&mut s, "p", &r.p.to_string(), false);
        push_kv(&mut s, "checked", &json_str(model_name(r.checked)), false);
        push_kv(&mut s, "claimed", &json_str(model_name(r.claimed)), false);
        push_kv(&mut s, "expect_clean", &r.expect_clean.to_string(), false);
        push_kv(&mut s, "matched", &r.matched.to_string(), false);
        push_kv(&mut s, "clean", &r.clean.to_string(), false);
        push_kv(&mut s, "violations", &r.violations.to_string(), false);
        push_kv(&mut s, "ok", &r.ok().to_string(), false);
        if let Some(b) = &r.blame {
            let pids: Vec<String> = b.pids.iter().map(usize::to_string).collect();
            let blame = format!(
                "{{\"round\": {}, \"phase\": {}, \"cell\": {}, \"kind\": {}, \"pids\": [{}]}}",
                b.round,
                json_str(b.phase),
                json_str(&b.cell),
                json_str(b.kind),
                pids.join(", ")
            );
            push_kv(&mut s, "blame", &blame, false);
        }
        s.push_str(", \"phases\": [");
        for (j, ph) in r.phases.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"phase\": {}, \"rounds\": {}, \"reads\": {}, \"writes\": {}, \
                 \"max_readers\": {}, \"max_writers\": {}}}",
                json_str(ph.phase),
                ph.stats.rounds,
                ph.stats.reads,
                ph.stats.writes,
                ph.stats.max_readers,
                ph.stats.max_writers
            ));
        }
        s.push_str("]}");
    }
    s.push_str("\n]\n");
    s
}

fn push_kv(s: &mut String, key: &str, val: &str, first: bool) {
    if !first {
        s.push_str(", ");
    }
    s.push('"');
    s.push_str(key);
    s.push_str("\": ");
    s.push_str(val);
}

fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for ch in v.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render reports as a markdown discipline report.
pub fn to_markdown(reports: &[CaseReport]) -> String {
    let mut s = String::new();
    s.push_str("# Discipline report\n\n");
    s.push_str(
        "Every row replays a *production* algorithm under shadow memory; \
         `matched` asserts the traced run bit-matched the untraced one \
         (results and PRAM charges). Canary rows are expected dirty — they \
         prove the checker detects real violations.\n\n",
    );
    s.push_str(
        "| algorithm | shape | p | checked | claimed | matched | violations | verdict |\n\
         |---|---|---:|---|---|---|---:|---|\n",
    );
    for r in reports {
        let verdict = match (r.expect_clean, r.ok()) {
            (true, true) => "clean ✓",
            (false, true) => "detected ✓ (canary)",
            (_, false) => "FAIL ✗",
        };
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            r.algorithm,
            r.shape,
            r.p,
            model_name(r.checked),
            model_name(r.claimed),
            if r.matched { "yes" } else { "NO" },
            r.violations,
            verdict
        ));
    }

    s.push_str("\n## Phase profiles\n\n");
    // One representative per algorithm: the case exercising the most phases.
    let mut seen: Vec<&'static str> = Vec::new();
    for r in reports {
        if !r.expect_clean || r.phases.is_empty() || seen.contains(&r.algorithm) {
            continue;
        }
        let r = reports
            .iter()
            .filter(|c| c.algorithm == r.algorithm && c.expect_clean)
            .max_by_key(|c| c.phases.len())
            .unwrap_or(r);
        seen.push(r.algorithm);
        s.push_str(&format!(
            "### {} — {} (p = {})\n\n",
            r.algorithm, r.shape, r.p
        ));
        s.push_str(
            "| phase | rounds | reads | writes | max readers/cell | max writers/cell |\n\
             |---|---:|---:|---:|---:|---:|\n",
        );
        for ph in &r.phases {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} |\n",
                ph.phase,
                ph.stats.rounds,
                ph.stats.reads,
                ph.stats.writes,
                ph.stats.max_readers,
                ph.stats.max_writers
            ));
        }
        s.push('\n');
    }

    s.push_str("## Canary blame\n\n");
    let mut any = false;
    for r in reports.iter().filter(|r| !r.expect_clean) {
        if let Some(b) = &r.blame {
            any = true;
            s.push_str(&format!(
                "- `{}`: {} of `{}` in round {} (phase `{}`) by pids {:?}\n",
                r.algorithm, b.kind, b.cell, b.round, b.phase, b.pids
            ));
        }
    }
    if !any {
        s.push_str("- none detected — the gate treats this as a checker failure\n");
    }
    s
}
