//! The analyzer sweep: tree shapes × processor counts × models, plus the
//! canary runs, and the gate verdict CI enforces.

use crate::replay::{
    replay_build_level, replay_build_pipelined, replay_geometry, replay_list_rank,
    replay_list_rank_naive, replay_search, replay_search_degraded, TreeShape,
};
use crate::CaseReport;
use fc_pram::Model;

/// Integer square root (processor-count midpoint of the sweep).
fn isqrt(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    while r * r > n {
        r -= 1;
    }
    r.max(1)
}

/// Run the full sweep. `quick` trims the instance sizes (used by tests);
/// CI runs the full sweep.
pub fn run_sweep(quick: bool) -> Vec<CaseReport> {
    let mut out = Vec::new();

    let small = TreeShape {
        height: 4,
        total: 600,
        heavy: None,
        seed: 9001,
    };
    let mid = TreeShape {
        height: 6,
        total: 2500,
        heavy: None,
        seed: 9002,
    };
    let heavy = TreeShape {
        height: 6,
        total: 2500,
        heavy: Some(0.8),
        seed: 9003,
    };
    let deep = TreeShape {
        height: 12,
        total: 1 << 16,
        heavy: None,
        seed: 9004,
    };

    let build_shapes: &[TreeShape] = if quick {
        &[small, heavy]
    } else {
        &[small, mid, heavy]
    };
    for &shape in build_shapes {
        out.push(replay_build_level(shape, Model::Erew));
        out.push(replay_build_pipelined(shape, Model::Erew));
    }

    let search_shapes: &[TreeShape] = if quick {
        &[small]
    } else {
        &[small, mid, heavy]
    };
    let queries = if quick { 4 } else { 8 };
    for &shape in search_shapes {
        for p in [1, isqrt(shape.total), shape.total] {
            out.push(replay_search(shape, p, Model::Crew, queries, true));
        }
    }
    // The deep instance engages the hop machinery (Steps 2-4) at large p.
    out.push(replay_search(deep, 1 << 20, Model::Crew, queries, true));
    out.push(replay_search_degraded(deep, 1 << 18, queries));

    for n in if quick { [257usize, 0] } else { [257, 1024] } {
        if n > 0 {
            out.push(replay_list_rank(n, Model::Erew));
        }
    }

    let geo_queries = if quick { 10 } else { 30 };
    for p in if quick { [1usize, 0] } else { [1, 1 << 14] } {
        if p > 0 {
            out.push(replay_geometry(256, 24, p, Model::Crew, geo_queries, 77));
        }
    }
    if !quick {
        // Large enough that hop selection engages the cooperative locator.
        out.push(replay_geometry(
            4096,
            48,
            1 << 22,
            Model::Crew,
            geo_queries,
            79,
        ));
    }

    // Canaries: the checker must *detect* these, or the gate fails.
    out.push(replay_list_rank_naive(257));
    out.push(replay_search(deep, 1 << 20, Model::Erew, 2, false));

    out
}

/// Gate verdict: every case must meet its expectation, every algorithm
/// family must be covered, and at least one canary must have fired.
pub struct Gate {
    /// Overall pass/fail.
    pub ok: bool,
    /// Human-readable failure descriptions (empty when `ok`).
    pub failures: Vec<String>,
}

/// Evaluate the gate over a sweep's reports.
pub fn evaluate_gate(reports: &[CaseReport]) -> Gate {
    let mut failures = Vec::new();
    for r in reports {
        if r.ok() {
            continue;
        }
        let why = if !r.matched {
            "traced result diverged from untraced"
        } else if r.expect_clean {
            "discipline violations detected"
        } else {
            "canary violation NOT detected"
        };
        failures.push(format!(
            "{} on {} (p={}, checked {}): {} ({} violations)",
            r.algorithm,
            r.shape,
            r.p,
            crate::model_name(r.checked),
            why,
            r.violations
        ));
    }
    for family in [
        "build-level",
        "build-pipelined",
        "search-explicit",
        "list-rank",
        "geometry-locate",
    ] {
        if !reports.iter().any(|r| r.algorithm == family) {
            failures.push(format!("algorithm family {family} was not replayed"));
        }
    }
    if !reports.iter().any(|r| !r.expect_clean && !r.clean) {
        failures.push("no canary fired: the checker cannot be trusted".to_string());
    }
    Gate {
        ok: failures.is_empty(),
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_passes_the_gate() {
        let reports = run_sweep(true);
        let gate = evaluate_gate(&reports);
        assert!(gate.ok, "gate failures: {:#?}", gate.failures);
        // Canary blame is fully populated.
        let canary = reports
            .iter()
            .find(|r| r.algorithm == "list-rank-naive")
            .expect("canary present");
        let blame = canary.blame.as_ref().expect("canary blame");
        assert!(blame.pids.len() >= 2);
        assert!(blame.phase.starts_with("listrank-naive/"));
    }

    #[test]
    fn gate_fails_when_a_clean_case_is_dirty() {
        let mut reports = run_sweep(true);
        if let Some(r) = reports.iter_mut().find(|r| r.expect_clean) {
            r.clean = false;
            r.violations = 1;
        }
        assert!(!evaluate_gate(&reports).ok);
    }

    #[test]
    fn gate_fails_when_canaries_go_silent() {
        let mut reports = run_sweep(true);
        for r in reports.iter_mut().filter(|r| !r.expect_clean) {
            r.clean = true;
            r.violations = 0;
            r.blame = None;
        }
        assert!(!evaluate_gate(&reports).ok);
    }

    #[test]
    fn json_and_markdown_render() {
        let reports = run_sweep(true);
        let json = crate::to_json(&reports);
        assert!(json.starts_with('['));
        assert!(json.contains("\"algorithm\": \"build-level\""));
        assert!(json.contains("\"blame\""));
        let md = crate::to_markdown(&reports);
        assert!(md.contains("| algorithm |"));
        assert!(md.contains("canary"));
    }
}
