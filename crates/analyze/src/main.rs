//! `fc-analyze` — replay the repo's algorithms under shadow-memory
//! EREW/CREW checking and report the discipline evidence.
//!
//! ```text
//! fc-analyze [--gate] [--quick] [--json PATH] [--md PATH]
//! ```
//!
//! * `--gate`  — exit nonzero unless every clean case is clean & bit-matched
//!   AND every canary violation is detected (CI's discipline job).
//! * `--quick` — trimmed instance sizes (smoke runs).
//! * `--json PATH` / `--md PATH` — write machine/human reports.

use fc_analyze::sweep::{evaluate_gate, run_sweep};
use fc_analyze::{to_json, to_markdown};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut gate = false;
    let mut quick = false;
    let mut json_path: Option<String> = None;
    let mut md_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--gate" => gate = true,
            "--quick" => quick = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(p),
                None => return usage("--json requires a path"),
            },
            "--md" => match args.next() {
                Some(p) => md_path = Some(p),
                None => return usage("--md requires a path"),
            },
            "--help" | "-h" => {
                println!("usage: fc-analyze [--gate] [--quick] [--json PATH] [--md PATH]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    let reports = run_sweep(quick);

    if let Some(path) = &json_path {
        if let Err(e) = std::fs::write(path, to_json(&reports)) {
            eprintln!("fc-analyze: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let md = to_markdown(&reports);
    if let Some(path) = &md_path {
        if let Err(e) = std::fs::write(path, &md) {
            eprintln!("fc-analyze: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        println!("{md}");
    }

    let verdict = evaluate_gate(&reports);
    let clean = reports.iter().filter(|r| r.expect_clean).count();
    let canaries = reports.len() - clean;
    println!(
        "fc-analyze: {} cases ({clean} clean-expected, {canaries} canaries) — gate {}",
        reports.len(),
        if verdict.ok { "PASS" } else { "FAIL" }
    );
    for f in &verdict.failures {
        eprintln!("fc-analyze: FAIL {f}");
    }
    if gate && !verdict.ok {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fc-analyze: {msg}");
    eprintln!("usage: fc-analyze [--gate] [--quick] [--json PATH] [--md PATH]");
    ExitCode::FAILURE
}
