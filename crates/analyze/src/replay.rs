//! Replay drivers: each runs a production algorithm twice — untraced and
//! under a live [`ShadowMem`] — asserts bit-identical results and PRAM
//! charges, and harvests the discipline evidence into a [`CaseReport`].

use crate::{harvest, CaseReport};
use fc_catalog::cascade::CascadedTree;
use fc_catalog::gen::{self, SizeDist};
use fc_catalog::pipeline::{build_pipelined, build_pipelined_traced};
use fc_catalog::tree::CatalogTree;
use fc_coop::explicit::{coop_search_explicit, coop_search_explicit_traced};
use fc_coop::structure::CoopStructure;
use fc_coop::ParamMode;
use fc_geom::cooploc::{locate_coop, locate_coop_traced};
use fc_geom::septree::SeparatorTree;
use fc_geom::subdivision::{MonotoneSubdivision, SubdivisionParams};
use fc_pram::listrank::{list_rank, list_rank_naive_traced, list_rank_traced};
use fc_pram::{Model, Pram, ShadowMem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A catalog-tree instance of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct TreeShape {
    /// Tree height.
    pub height: u32,
    /// Total catalog size.
    pub total: usize,
    /// `Some(frac)` concentrates that fraction of keys in one catalog.
    pub heavy: Option<f64>,
    /// Generator seed.
    pub seed: u64,
}

impl TreeShape {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self.heavy {
            Some(f) => format!("balanced h={} n={} heavy({f})", self.height, self.total),
            None => format!("balanced h={} n={} uniform", self.height, self.total),
        }
    }

    /// Generate the instance.
    pub fn gen(&self) -> CatalogTree<i64> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let dist = match self.heavy {
            Some(f) => SizeDist::SingleHeavy(f),
            None => SizeDist::Uniform,
        };
        gen::balanced_binary(self.height, self.total, dist, &mut rng)
    }
}

/// Sampling factor used by every build replay (binary trees: must exceed
/// the max degree of 2).
const SAMPLE: usize = 4;

fn keys_match(a: &CascadedTree<i64>, b: &CascadedTree<i64>, tree: &CatalogTree<i64>) -> bool {
    tree.ids().all(|id| a.keys(id) == b.keys(id))
}

/// Replay the level-synchronous cascade build (claimed EREW via the
/// bitonic merge network schedule).
pub fn replay_build_level(shape: TreeShape, model: Model) -> CaseReport {
    let tree = shape.gen();
    let plain = CascadedTree::try_build(tree.clone(), SAMPLE).expect("seed build");
    let mut sh = ShadowMem::new(model);
    let traced = CascadedTree::try_build_traced(tree.clone(), SAMPLE, &mut sh).expect("replay");
    let matched = keys_match(&plain, &traced, &tree);
    let (clean, violations, blame, phases) = harvest(&mut sh);
    CaseReport {
        algorithm: "build-level",
        shape: shape.label(),
        p: 0,
        checked: model,
        claimed: Model::Erew,
        expect_clean: true,
        matched,
        clean,
        violations,
        blame,
        phases,
    }
}

/// Replay the pipelined (Atallah–Cole–Goodrich schedule) cascade build
/// (claimed EREW via parity double-buffering and the settled hand-off).
pub fn replay_build_pipelined(shape: TreeShape, model: Model) -> CaseReport {
    let tree = shape.gen();
    let (plain, pstats) = build_pipelined(tree.clone(), SAMPLE, None);
    let mut sh = ShadowMem::new(model);
    let (traced, tstats) = build_pipelined_traced(tree.clone(), SAMPLE, None, &mut sh);
    let matched = keys_match(&plain, &traced, &tree) && pstats == tstats;
    let (clean, violations, blame, phases) = harvest(&mut sh);
    CaseReport {
        algorithm: "build-pipelined",
        shape: shape.label(),
        p: 0,
        checked: model,
        claimed: Model::Erew,
        expect_clean: true,
        matched,
        clean,
        violations,
        blame,
        phases,
    }
}

/// Replay the explicit cooperative search over `queries` random queries
/// (claimed CREW; checking it against EREW is the canary configuration —
/// pass `expect_clean = false` with `model = Model::Erew`).
pub fn replay_search(
    shape: TreeShape,
    p: usize,
    model: Model,
    queries: usize,
    expect_clean: bool,
) -> CaseReport {
    let st = CoopStructure::preprocess(shape.gen(), ParamMode::Auto);
    let tree = st.tree();
    let mut rng = SmallRng::seed_from_u64(shape.seed ^ 0x5eaec4);
    let mut sh = ShadowMem::new(model);
    let mut matched = true;
    for _ in 0..queries {
        let leaf = gen::random_leaf(tree, &mut rng);
        let path = tree.path_from_root(leaf);
        let y = rng.gen_range(-10..(shape.total as i64 * 16) + 10);
        let mut pram = Pram::new(p, Model::Crew);
        let plain = coop_search_explicit(&st, &path, y, &mut pram);
        let mut pram_t = Pram::new(p, Model::Crew);
        let traced = coop_search_explicit_traced(&st, &path, y, &mut pram_t, &mut sh);
        matched &= traced.finds == plain.finds
            && traced.augs == plain.augs
            && pram_t.steps() == pram.steps()
            && pram_t.rounds() == pram.rounds();
    }
    let (clean, violations, blame, phases) = harvest(&mut sh);
    CaseReport {
        algorithm: "search-explicit",
        shape: shape.label(),
        p,
        checked: model,
        claimed: Model::Crew,
        expect_clean,
        matched,
        clean,
        violations,
        blame,
        phases,
    }
}

/// Replay the explicit search with processors scheduled to die mid-run
/// (shadow-memory side): dead pids' accesses are dropped, the discipline
/// must stay clean, and results are still exact.
pub fn replay_search_degraded(shape: TreeShape, p: usize, queries: usize) -> CaseReport {
    let st = CoopStructure::preprocess(shape.gen(), ParamMode::Auto);
    let tree = st.tree();
    let mut rng = SmallRng::seed_from_u64(shape.seed ^ 0xdead);
    let mut sh = ShadowMem::new(Model::Crew);
    for (i, pid) in (0..p).step_by((p / 4).max(1)).enumerate() {
        sh.schedule_kill(2 + i as u64, pid);
    }
    let mut matched = true;
    for _ in 0..queries {
        let leaf = gen::random_leaf(tree, &mut rng);
        let path = tree.path_from_root(leaf);
        let y = rng.gen_range(-10..(shape.total as i64 * 16) + 10);
        let mut pram = Pram::new(p, Model::Crew);
        let plain = coop_search_explicit(&st, &path, y, &mut pram);
        let mut pram_t = Pram::new(p, Model::Crew);
        let traced = coop_search_explicit_traced(&st, &path, y, &mut pram_t, &mut sh);
        matched &= traced.finds == plain.finds && traced.augs == plain.augs;
    }
    let dropped_some = sh.dropped_dead_accesses() > 0;
    let (clean, violations, blame, phases) = harvest(&mut sh);
    CaseReport {
        algorithm: "search-degraded",
        shape: shape.label(),
        p,
        checked: Model::Crew,
        claimed: Model::Crew,
        expect_clean: true,
        matched: matched && dropped_some,
        clean,
        violations,
        blame,
        phases,
    }
}

/// A shuffled chain of `n` nodes ending in a self-loop terminal.
fn shuffled_chain(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut next = vec![0usize; n];
    for w in perm.windows(2) {
        next[w[0]] = w[1];
    }
    if let Some(&last) = perm.last() {
        next[last] = last;
    }
    next
}

/// Replay the double-buffered publish/jump Wyllie list ranking (claimed
/// EREW).
pub fn replay_list_rank(n: usize, model: Model) -> CaseReport {
    let next = shuffled_chain(n, 0x11517 + n as u64);
    let mut pram = Pram::new(n, Model::Erew);
    let plain = list_rank(&next, &mut pram);
    let mut pram_t = Pram::new(n, Model::Erew);
    let mut sh = ShadowMem::new(model);
    let traced = list_rank_traced(&next, &mut pram_t, &mut sh);
    let matched = plain == traced;
    let (clean, violations, blame, phases) = harvest(&mut sh);
    CaseReport {
        algorithm: "list-rank",
        shape: format!("shuffled chain n={n}"),
        p: n,
        checked: model,
        claimed: Model::Erew,
        expect_clean: true,
        matched,
        clean,
        violations,
        blame,
        phases,
    }
}

/// Canary: the naive pointer-jumping schedule reads *live* successor
/// cells, so EREW checking must report concurrent reads converging at the
/// terminal — with phase/round/pid blame.
pub fn replay_list_rank_naive(n: usize) -> CaseReport {
    let next = shuffled_chain(n, 0x11519 + n as u64);
    let mut pram = Pram::new(n, Model::Erew);
    let plain = list_rank(&next, &mut pram);
    let mut pram_t = Pram::new(n, Model::Erew);
    let mut sh = ShadowMem::new(Model::Erew);
    let traced = list_rank_naive_traced(&next, &mut pram_t, &mut sh);
    let matched = plain == traced;
    let (clean, violations, blame, phases) = harvest(&mut sh);
    CaseReport {
        algorithm: "list-rank-naive",
        shape: format!("shuffled chain n={n}"),
        p: n,
        checked: Model::Erew,
        claimed: Model::Erew,
        expect_clean: false,
        matched,
        clean,
        violations,
        blame,
        phases,
    }
}

/// Replay cooperative point location over `queries` random query points
/// (claimed CREW, Theorem 4).
pub fn replay_geometry(
    regions: usize,
    strips: usize,
    p: usize,
    model: Model,
    queries: usize,
    seed: u64,
) -> CaseReport {
    let mut rng = SmallRng::seed_from_u64(seed);
    let sub = MonotoneSubdivision::generate(
        SubdivisionParams {
            regions,
            strips,
            stick: 0.4,
            detach: 0.4,
        },
        &mut rng,
    );
    let t = SeparatorTree::build(sub, ParamMode::Auto);
    let mut sh = ShadowMem::new(model);
    let mut matched = true;
    for _ in 0..queries {
        let (x, y) = t.sub.random_query(&mut rng);
        let want = t.sub.locate_brute(x, y);
        let mut pram = Pram::new(p, Model::Crew);
        let (plain_r, plain_s) = locate_coop(&t, x, y, &mut pram);
        let mut pram_t = Pram::new(p, Model::Crew);
        let (traced_r, traced_s) = locate_coop_traced(&t, x, y, &mut pram_t, &mut sh);
        matched &= traced_r == plain_r
            && traced_r == want
            && traced_s == plain_s
            && pram_t.steps() == pram.steps();
    }
    let (clean, violations, blame, phases) = harvest(&mut sh);
    CaseReport {
        algorithm: "geometry-locate",
        shape: format!("monotone f={regions} strips={strips}"),
        p,
        checked: model,
        claimed: Model::Crew,
        expect_clean: true,
        matched,
        clean,
        violations,
        blame,
        phases,
    }
}
