//! # fc-pram — PRAM substrate for the cooperative-search reproduction
//!
//! The paper ("Optimal Cooperative Search in Fractional Cascaded Data
//! Structures", Tamassia & Vitter, SPAA 1990) states its results in the
//! PRAM model: `p` synchronous processors sharing a memory, with the EREW
//! (exclusive read, exclusive write), CREW (concurrent read, exclusive
//! write), and CRCW (concurrent read, concurrent write) access disciplines.
//!
//! Real PRAMs do not exist, so this crate provides three substitutes that
//! together let the rest of the workspace both *measure* and *execute* the
//! paper's algorithms:
//!
//! 1. [`Pram`] — a step-synchronous **cost model**. Algorithms charge
//!    "rounds" of unit operations to it; the model converts each round into
//!    parallel steps by Brent scheduling (`ceil(ops / p)`), and tracks total
//!    work, peak per-step parallelism, and round count. Every theorem-shaped
//!    experiment in the workspace reports `Pram` step counts, which is
//!    exactly the quantity the paper's theorems bound.
//! 2. [`traced`] — an instrumented shared memory that executes virtual
//!    processors round-by-round and verifies that the access pattern obeys
//!    the claimed discipline (EREW/CREW/CRCW). Used by tests to check that,
//!    e.g., the CREW cooperative search never performs a concurrent write.
//! 3. [`exec`] — thin rayon-backed helpers for running the same round
//!    structure on real cores, used by the wall-clock Criterion benches.
//!
//! [`primitives`] implements the textbook PRAM building blocks the paper
//! uses implicitly: cooperative (p-ary) binary search, prefix sums, and
//! parallel merge.

#![warn(missing_docs)]

pub mod conflict;
pub mod cost;
pub mod exec;
pub mod listrank;
pub mod primitives;
pub mod shadow;
pub mod traced;

pub use cost::{Model, Pram, PramReport};
pub use primitives::{coop_lower_bound, coop_lower_bound_traced, lower_bound, lower_bound_naive};
pub use shadow::{NoTrace, PhaseStats, Region, ShadowMem, ShadowViolation, Tracer};
