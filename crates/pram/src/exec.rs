//! Rayon-backed execution of round-structured algorithms on real cores.
//!
//! The cost model ([`crate::cost`]) measures the paper's step counts; this
//! module is the physical counterpart used by wall-clock benchmarks: it runs
//! the per-processor bodies of a round genuinely in parallel on the rayon
//! thread pool. The guarantees are weaker than a PRAM's (no lockstep
//! synchrony within a round), but the round boundary is a full barrier, which
//! is all the workspace's algorithms rely on.

use rayon::prelude::*;

/// Run one synchronous round of `procs` virtual processors in parallel.
/// `body(pid)` must be safe to run concurrently for distinct pids (rayon and
/// the borrow checker enforce data-race freedom). Returns the per-processor
/// results in pid order.
pub fn round_map<R, F>(procs: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync + Send,
{
    (0..procs).into_par_iter().map(body).collect()
}

/// Run one round for side effects only (e.g. each processor fills its own
/// slot of a pre-split output). Prefer [`round_map`] when results are values.
pub fn round_for_each<F>(procs: usize, body: F)
where
    F: Fn(usize) + Sync + Send,
{
    (0..procs).into_par_iter().for_each(body);
}

/// Sequential fallback used when a round is too small to benefit from
/// fan-out. Mirrors [`round_map`].
pub fn round_map_seq<R, F>(procs: usize, mut body: F) -> Vec<R>
where
    F: FnMut(usize) -> R,
{
    (0..procs).map(&mut body).collect()
}

/// Run a round in parallel when `procs >= grain`, sequentially otherwise.
/// The grain guards against rayon overhead dominating tiny rounds — the
/// common case in cooperative search, where candidate windows are small for
/// small `p`.
pub fn round_map_auto<R, F>(procs: usize, grain: usize, body: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync + Send,
{
    if procs >= grain {
        round_map(procs, body)
    } else {
        (0..procs).map(body).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn round_map_preserves_pid_order() {
        let out = round_map(100, |pid| pid * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn round_for_each_runs_every_pid_once() {
        let count = AtomicUsize::new(0);
        round_for_each(64, |_pid| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn round_map_auto_matches_parallel_and_seq() {
        let par = round_map_auto(50, 1, |pid| pid + 1);
        let seq = round_map_auto(50, 1000, |pid| pid + 1);
        assert_eq!(par, seq);
        assert_eq!(round_map_seq(50, |pid| pid + 1), seq);
    }

    #[test]
    fn empty_round_is_fine() {
        let out: Vec<usize> = round_map(0, |pid| pid);
        assert!(out.is_empty());
    }
}
