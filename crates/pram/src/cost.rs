//! Step-synchronous PRAM cost model.
//!
//! The paper's complexity claims are statements about the number of
//! synchronous parallel steps taken by `p` processors. This module provides
//! an accounting object, [`Pram`], that algorithms thread through their
//! execution. Each *round* of the algorithm — a phase in which some number
//! of unit operations could run concurrently — is charged with
//! [`Pram::round`]; the model converts it to steps by Brent's scheduling
//! principle: `ops` independent unit operations on `p` processors take
//! `ceil(ops / p)` steps. Strictly sequential phases are charged with
//! [`Pram::seq`].
//!
//! The model deliberately counts *unit operations*, not wall-clock time:
//! a comparison, a pointer dereference, and an index computation each cost
//! one op. Constant factors therefore differ from any concrete machine, but
//! asymptotic shapes — the subject of every theorem in the paper — are
//! measured exactly.

/// PRAM memory-access discipline.
///
/// The discipline does not change how costs are *counted* (steps are steps in
/// all three models); it is carried along so that reports and the
/// [`crate::traced`] checker know which discipline an algorithm claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// Exclusive read, exclusive write. The paper's preprocessing bound
    /// (`O(log n)` time, `n/log n` processors) is stated for EREW.
    Erew,
    /// Concurrent read, exclusive write. Cooperative search (Theorem 1) and
    /// point location (Theorem 4) are CREW algorithms.
    Crew,
    /// Concurrent read, concurrent write. Used only for indirect retrieval
    /// (Theorem 6, part 2).
    Crcw,
}

impl Model {
    /// Human-readable name, matching the paper's usage.
    pub fn name(self) -> &'static str {
        match self {
            Model::Erew => "EREW",
            Model::Crew => "CREW",
            Model::Crcw => "CRCW",
        }
    }
}

/// Cost accumulator for a PRAM computation with a fixed processor count.
///
/// # Example
///
/// ```
/// use fc_pram::{Model, Pram};
///
/// let mut pram = Pram::new(4, Model::Crew);
/// pram.round(16); // 16 independent ops on 4 processors: 4 steps
/// pram.seq(3);    // 3 sequential ops: 3 steps
/// assert_eq!(pram.steps(), 7);
/// assert_eq!(pram.work(), 19);
/// ```
#[derive(Debug, Clone)]
pub struct Pram {
    p: usize,
    alive: usize,
    pending: Vec<(u64, usize)>,
    model: Model,
    steps: u64,
    work: u64,
    rounds: u64,
    peak: usize,
}

impl Pram {
    /// Create a cost model for `p >= 1` processors under `model`.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn new(p: usize, model: Model) -> Self {
        assert!(p >= 1, "a PRAM needs at least one processor");
        Pram {
            p,
            alive: p,
            pending: Vec::new(),
            model,
            steps: 0,
            work: 0,
            rounds: 0,
            peak: 0,
        }
    }

    /// The number of processors currently alive. Equals the provisioned
    /// count until [`Pram::kill`] or a scheduled failure fires; degraded-mode
    /// algorithms re-read this between rounds and re-schedule (Brent) onto
    /// the survivors.
    #[inline]
    pub fn processors(&self) -> usize {
        self.alive
    }

    /// The processor count this model was created with, before any failures.
    #[inline]
    pub fn provisioned(&self) -> usize {
        self.p
    }

    /// Fail `n` processors immediately. The count may reach zero, in which
    /// case subsequent rounds are charged as if one (phantom) processor were
    /// left; algorithms that care must check [`Pram::processors`] and report
    /// `NoProcessors` themselves.
    pub fn kill(&mut self, n: usize) {
        self.alive = self.alive.saturating_sub(n);
    }

    /// Schedule `count` processors to fail just before round `at_round`
    /// (rounds are numbered from 0 in charge order). Used by fault plans to
    /// kill processors mid-search deterministically.
    pub fn schedule_failure(&mut self, at_round: u64, count: usize) {
        self.pending.push((at_round, count));
    }

    /// Fire every scheduled failure whose round has arrived.
    fn apply_pending_failures(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let now = self.rounds;
        let mut killed = 0usize;
        self.pending.retain(|&(at, n)| {
            if at <= now {
                killed += n;
                false
            } else {
                true
            }
        });
        self.alive = self.alive.saturating_sub(killed);
    }

    /// The access discipline this computation claims to obey.
    #[inline]
    pub fn model(&self) -> Model {
        self.model
    }

    /// Charge one synchronous round consisting of `ops` unit operations that
    /// could all execute concurrently. Costs `ceil(ops / p)` steps (Brent
    /// scheduling) and `ops` work. A round of zero ops is free.
    #[inline]
    pub fn round(&mut self, ops: usize) {
        self.apply_pending_failures();
        if ops == 0 {
            return;
        }
        let p = self.alive.max(1);
        self.steps += ops.div_ceil(p) as u64;
        self.work += ops as u64;
        self.rounds += 1;
        self.peak = self.peak.max(ops.min(p));
    }

    /// Charge `ops` strictly sequential unit operations (one processor).
    #[inline]
    pub fn seq(&mut self, ops: usize) {
        self.steps += ops as u64;
        self.work += ops as u64;
        if ops > 0 {
            self.peak = self.peak.max(1);
        }
    }

    /// Parallel steps accumulated so far. This is the quantity the paper's
    /// theorems bound, e.g. `O((log n)/log p)` for Theorem 1.
    #[inline]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total unit operations (work) accumulated so far.
    #[inline]
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Number of charged rounds.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Largest number of processors simultaneously busy in any single step.
    #[inline]
    pub fn peak_parallelism(&self) -> usize {
        self.peak
    }

    /// Fork a fresh counter with the same processor count and model, for a
    /// computation branch that runs *concurrently* with others. Combine the
    /// branches back with [`Pram::join_max`].
    pub fn fork(&self) -> Pram {
        Pram::new(self.p, self.model)
    }

    /// Join concurrently executed branches: elapsed steps are the maximum
    /// over branches (they ran at the same time), work is the sum.
    ///
    /// This models the common pattern "split the p processors into groups,
    /// each group handles one branch". The caller is responsible for the
    /// branches having used an appropriate share of processors (typically by
    /// forking counters with a smaller `p` via [`Pram::with_processors`]).
    pub fn join_max(&mut self, branches: impl IntoIterator<Item = Pram>) {
        let mut max_steps = 0u64;
        for b in branches {
            max_steps = max_steps.max(b.steps);
            self.work += b.work;
            self.peak = self.peak.max(b.peak);
            self.rounds += b.rounds;
        }
        self.steps += max_steps;
    }

    /// A fresh counter with a different processor count (used when dividing
    /// the machine into processor groups, as in Theorem 2's subpath groups).
    pub fn with_processors(&self, p: usize) -> Pram {
        Pram::new(p, self.model)
    }

    /// Snapshot the counters into a plain report value.
    pub fn report(&self) -> PramReport {
        PramReport {
            processors: self.p,
            model: self.model,
            steps: self.steps,
            work: self.work,
            rounds: self.rounds,
            peak_parallelism: self.peak,
        }
    }
}

/// Immutable snapshot of a [`Pram`]'s counters, convenient for tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PramReport {
    /// Processor count the computation was charged against.
    pub processors: usize,
    /// Claimed access discipline.
    pub model: Model,
    /// Parallel steps (the paper's "time").
    pub steps: u64,
    /// Total unit operations.
    pub work: u64,
    /// Number of synchronous rounds.
    pub rounds: u64,
    /// Peak per-step processor usage.
    pub peak_parallelism: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_uses_brent_scheduling() {
        let mut pram = Pram::new(4, Model::Crew);
        pram.round(4);
        assert_eq!(pram.steps(), 1);
        pram.round(5);
        assert_eq!(pram.steps(), 3); // ceil(5/4) = 2 more
        pram.round(1);
        assert_eq!(pram.steps(), 4);
        assert_eq!(pram.work(), 10);
        assert_eq!(pram.rounds(), 3);
    }

    #[test]
    fn zero_ops_round_is_free() {
        let mut pram = Pram::new(8, Model::Erew);
        pram.round(0);
        assert_eq!(pram.steps(), 0);
        assert_eq!(pram.rounds(), 0);
        assert_eq!(pram.peak_parallelism(), 0);
    }

    #[test]
    fn seq_charges_one_step_per_op() {
        let mut pram = Pram::new(64, Model::Crew);
        pram.seq(10);
        assert_eq!(pram.steps(), 10);
        assert_eq!(pram.work(), 10);
        assert_eq!(pram.peak_parallelism(), 1);
    }

    #[test]
    fn single_processor_round_equals_seq() {
        let mut a = Pram::new(1, Model::Crew);
        let mut b = Pram::new(1, Model::Crew);
        a.round(17);
        b.seq(17);
        assert_eq!(a.steps(), b.steps());
        assert_eq!(a.work(), b.work());
    }

    #[test]
    fn peak_parallelism_is_capped_by_p() {
        let mut pram = Pram::new(4, Model::Crew);
        pram.round(100);
        assert_eq!(pram.peak_parallelism(), 4);
    }

    #[test]
    fn join_max_takes_slowest_branch() {
        let mut main = Pram::new(8, Model::Crew);
        main.seq(1);
        let mut b1 = main.with_processors(4);
        let mut b2 = main.with_processors(4);
        b1.round(40); // 10 steps on 4 procs
        b2.round(8); // 2 steps
        main.join_max([b1, b2]);
        assert_eq!(main.steps(), 1 + 10);
        assert_eq!(main.work(), 1 + 40 + 8);
    }

    #[test]
    fn report_snapshots_counters() {
        let mut pram = Pram::new(2, Model::Crcw);
        pram.round(3);
        let r = pram.report();
        assert_eq!(r.processors, 2);
        assert_eq!(r.model, Model::Crcw);
        assert_eq!(r.steps, 2);
        assert_eq!(r.work, 3);
        assert_eq!(r.rounds, 1);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_panics() {
        let _ = Pram::new(0, Model::Crew);
    }

    #[test]
    fn kill_degrades_round_charging() {
        let mut pram = Pram::new(8, Model::Crew);
        pram.round(16); // 2 steps on 8
        pram.kill(6);
        assert_eq!(pram.processors(), 2);
        assert_eq!(pram.provisioned(), 8);
        pram.round(16); // 8 steps on the 2 survivors
        assert_eq!(pram.steps(), 2 + 8);
    }

    #[test]
    fn kill_saturates_at_zero_and_rounds_still_charge() {
        let mut pram = Pram::new(4, Model::Crew);
        pram.kill(100);
        assert_eq!(pram.processors(), 0);
        pram.round(5); // charged as one phantom processor
        assert_eq!(pram.steps(), 5);
    }

    #[test]
    fn scheduled_failures_fire_at_round_boundaries() {
        let mut pram = Pram::new(8, Model::Crew);
        pram.schedule_failure(1, 4); // fire before the second charged round
        pram.round(8); // round 0: 8 procs -> 1 step
        assert_eq!(pram.processors(), 8);
        pram.round(8); // round 1: failure fires first -> 4 procs -> 2 steps
        assert_eq!(pram.processors(), 4);
        assert_eq!(pram.steps(), 1 + 2);
    }

    #[test]
    fn model_names_match_paper() {
        assert_eq!(Model::Erew.name(), "EREW");
        assert_eq!(Model::Crew.name(), "CREW");
        assert_eq!(Model::Crcw.name(), "CRCW");
    }
}
