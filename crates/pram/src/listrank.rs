//! List ranking and the Euler tour technique — the classical EREW
//! primitives behind parallel tree preprocessing.
//!
//! The paper's `O(log n)`-time EREW preprocessing (and [1]'s tree
//! machinery it builds on) silently relies on being able to compute tree
//! depths, subtree sizes, and level orderings in parallel. The standard
//! route is the **Euler tour technique**: linearise the tree into a
//! circular successor list (each edge twice), weight the edge copies, and
//! **list-rank** the tour by pointer jumping — `O(log n)` rounds, `O(n)`
//! cells, one processor per element.
//!
//! This module implements both with cost accounting. Pointer jumping
//! performs `O(n log n)` work (the textbook version; the optimal
//! `O(n/log n)`-processor variants exist but are not needed for any bound
//! in this reproduction — noted in DESIGN.md's dependency table).

use crate::cost::Pram;
use crate::shadow::Tracer;

/// Rank every element of a successor-linked list: `rank[i]` = number of
/// links from `i` to the terminal (the element with `next[i] == i`).
///
/// Pointer jumping: `O(log n)` synchronous rounds, each `n` ops. Accepts
/// any forest of lists (multiple terminals).
pub fn list_rank(next: &[usize], pram: &mut Pram) -> Vec<u64> {
    let n = next.len();
    let mut nxt = next.to_vec();
    let mut rank = vec![0u64; n];
    for (i, &nx) in next.iter().enumerate() {
        assert!(nx < n, "successor out of range");
        if nx != i {
            rank[i] = 1;
        }
    }
    pram.round(n);
    // Jump until every pointer reaches a terminal.
    loop {
        let mut changed = false;
        let prev_rank = rank.clone();
        let prev_next = nxt.clone();
        for i in 0..n {
            if prev_next[i] != prev_next[prev_next[i]] || prev_next[i] != nxt[i] {
                changed = true;
            }
            rank[i] = prev_rank[i] + prev_rank[prev_next[i]];
            nxt[i] = prev_next[prev_next[i]];
        }
        pram.round(n);
        if !changed {
            break;
        }
    }
    rank
}

/// Sentinel for "pointer has reached a terminal" in the EREW schedule.
const NIL: usize = usize::MAX;

/// EREW-faithful list ranking under an access tracer.
///
/// Same result as [`list_rank`], but executed on the genuinely exclusive
/// schedule the EREW claim needs, with every access reported to `tr`:
///
/// * terminal pointers use a NIL convention instead of self-loops, and a
///   node whose pointer reaches NIL deactivates — so the in-degree of every
///   *active* pointer stays ≤ 1 (the classical invariant of Wyllie jumping
///   on a successor list), and no cell ever collects concurrent readers;
/// * each jump is two sub-rounds: a **publish** round where node `j` copies
///   its own `(ptr, rank)` into a publish buffer, and a **jump** round where
///   `j`'s unique predecessor reads the published copies — owner and
///   predecessor never touch the same cell in the same round.
///
/// Logical regions: `("lr-ptr", 0)`, `("lr-rank", 0)` (own state) and
/// `("lr-pub-ptr", 0)`, `("lr-pub-rank", 0)` (the publish buffer).
pub fn list_rank_traced<Tr: Tracer>(next: &[usize], pram: &mut Pram, tr: &mut Tr) -> Vec<u64> {
    let n = next.len();
    let ptr_r = ("lr-ptr", 0);
    let rank_r = ("lr-rank", 0);
    let pub_ptr_r = ("lr-pub-ptr", 0);
    let pub_rank_r = ("lr-pub-rank", 0);

    // Init round: each node reads its own input link and writes its own
    // state — exclusive by construction.
    tr.phase("listrank/init");
    let mut ptr = vec![NIL; n];
    let mut rank = vec![0u64; n];
    for (i, &nx) in next.iter().enumerate() {
        assert!(nx < n, "successor out of range");
        if tr.live() {
            tr.read(i, ("lr-input", 0), i);
            tr.write(i, ptr_r, i);
            tr.write(i, rank_r, i);
        }
        if nx != i {
            rank[i] = 1;
            // Pointing at a terminal deactivates immediately: the terminal's
            // cells are never read, so converging pointers cannot collide.
            ptr[i] = if next[nx] == nx { NIL } else { nx };
        }
    }
    pram.round(n);
    tr.barrier();

    let mut pub_ptr = vec![NIL; n];
    let mut pub_rank = vec![0u64; n];
    loop {
        let active: Vec<usize> = (0..n).filter(|&i| ptr[i] != NIL).collect();
        if active.is_empty() {
            break;
        }
        // Publish: every node copies its own state into the buffer — a
        // deactivated node cannot know whether a predecessor still needs
        // its (final) rank, so all n publish. Own-cell reads and writes
        // only: exclusive by construction.
        tr.phase("listrank/publish");
        for j in 0..n {
            if tr.live() {
                tr.read(j, ptr_r, j);
                tr.read(j, rank_r, j);
                tr.write(j, pub_ptr_r, j);
                tr.write(j, pub_rank_r, j);
            }
            pub_ptr[j] = ptr[j];
            pub_rank[j] = rank[j];
        }
        pram.round(n);
        tr.barrier();
        // Jump: node i reads its unique successor's published copies.
        tr.phase("listrank/jump");
        for &i in &active {
            let j = ptr[i];
            if tr.live() {
                tr.read(i, ptr_r, i);
                tr.read(i, rank_r, i);
                tr.read(i, pub_ptr_r, j);
                tr.read(i, pub_rank_r, j);
                tr.write(i, ptr_r, i);
                tr.write(i, rank_r, i);
            }
            rank[i] += pub_rank[j];
            ptr[i] = pub_ptr[j];
        }
        pram.round(active.len());
        tr.barrier();
    }
    rank
}

/// The *naive* traced replay of [`list_rank`]: node `i` reads its
/// successor's live cells directly (no publish buffer, terminals kept as
/// self-loops, no deactivation). This is the discipline analyzer's seeded
/// fault: once pointers converge on a terminal, its cells collect many
/// concurrent readers, so an EREW check must report violations — while the
/// returned ranks still match [`list_rank`] exactly.
pub fn list_rank_naive_traced<Tr: Tracer>(
    next: &[usize],
    pram: &mut Pram,
    tr: &mut Tr,
) -> Vec<u64> {
    let n = next.len();
    let ptr_r = ("lr-ptr", 0);
    let rank_r = ("lr-rank", 0);
    let mut nxt = next.to_vec();
    let mut rank = vec![0u64; n];
    tr.phase("listrank-naive/init");
    for (i, &nx) in next.iter().enumerate() {
        assert!(nx < n, "successor out of range");
        if nx != i {
            rank[i] = 1;
        }
        if tr.live() {
            tr.write(i, ptr_r, i);
            tr.write(i, rank_r, i);
        }
    }
    pram.round(n);
    tr.barrier();
    tr.phase("listrank-naive/jump");
    loop {
        let mut changed = false;
        let prev_rank = rank.clone();
        let prev_next = nxt.clone();
        for i in 0..n {
            let j = prev_next[i];
            if tr.live() {
                tr.read(i, ptr_r, i);
                tr.read(i, rank_r, i);
                // Direct read of the successor's live cells — the owner of
                // `j` reads/writes them too, and converged pointers share
                // one `j`: illegal under EREW.
                tr.read(i, ptr_r, j);
                tr.read(i, rank_r, j);
                tr.write(i, ptr_r, i);
                tr.write(i, rank_r, i);
            }
            if j != prev_next[j] || j != nxt[i] {
                changed = true;
            }
            rank[i] = prev_rank[i] + prev_rank[j];
            nxt[i] = prev_next[j];
        }
        pram.round(n);
        tr.barrier();
        if !changed {
            break;
        }
    }
    rank
}

/// Weighted list ranking: `value[i]` = sum of `weight` along the path from
/// `i` to the terminal, including `i`'s own weight, excluding the
/// terminal's (set the terminal's weight as desired).
pub fn list_rank_weighted(next: &[usize], weight: &[i64], pram: &mut Pram) -> Vec<i64> {
    let n = next.len();
    assert_eq!(weight.len(), n);
    let mut nxt = next.to_vec();
    // Invariant: acc[i] = sum of weights over [i, nxt[i]) (right-exclusive),
    // so terminals carry 0 and never pollute repeated additions.
    let mut acc: Vec<i64> = (0..n)
        .map(|i| if next[i] == i { 0 } else { weight[i] })
        .collect();
    pram.round(n);
    loop {
        let mut changed = false;
        let prev_acc = acc.clone();
        let prev_next = nxt.clone();
        for i in 0..n {
            if prev_next[i] != prev_next[prev_next[i]] {
                changed = true;
            }
            acc[i] = prev_acc[i] + prev_acc[prev_next[i]];
            nxt[i] = prev_next[prev_next[i]];
        }
        pram.round(n);
        if !changed {
            break;
        }
    }
    // Close the half-open interval: every pointer now rests on its
    // terminal, whose weight enters exactly once.
    for i in 0..n {
        acc[i] += weight[nxt[i]];
    }
    pram.round(n);
    acc
}

/// An Euler tour of a rooted tree given as parent links (`parent[root] ==
/// root`): returns, per node, its **depth**, computed by building the tour
/// successor list and weighted-ranking it (down-edges +1, up-edges −1).
///
/// `children` must list each node's children (consistent with `parent`).
/// `O(log n)` rounds, `O(n)` elements.
pub fn euler_tour_depths(parent: &[usize], children: &[Vec<usize>], pram: &mut Pram) -> Vec<u32> {
    let n = parent.len();
    assert_eq!(children.len(), n);
    if n == 1 {
        return vec![0];
    }
    // Tour elements: 2 per edge. Down-edge of v = 2v, up-edge of v = 2v+1
    // (v != root). The successor of a down-edge into v is v's first
    // child's down-edge, or v's up-edge if v is a leaf; the successor of
    // an up-edge out of v is v's next sibling's down-edge, or the parent's
    // up-edge.
    let m = 2 * n;
    let mut next = vec![0usize; m];
    let mut weight = vec![0i64; m];
    let root = (0..n).find(|&v| parent[v] == v).expect("rooted");
    let first_child = |v: usize| children[v].first().copied();
    let next_sibling = |v: usize| -> Option<usize> {
        let p = parent[v];
        let pos = children[p].iter().position(|&c| c == v).unwrap();
        children[p].get(pos + 1).copied()
    };
    for v in 0..n {
        if v != root {
            weight[2 * v] = 1; // descending into v
            weight[2 * v + 1] = -1; // ascending out of v
                                    // down(v) -> first child's down, or up(v).
            next[2 * v] = match first_child(v) {
                Some(c) => 2 * c,
                None => 2 * v + 1,
            };
            // up(v) -> next sibling's down, or parent's up (or terminal).
            next[2 * v + 1] = match next_sibling(v) {
                Some(s) => 2 * s,
                None => {
                    let p = parent[v];
                    if p == root {
                        2 * root + 1 // tour terminal marker
                    } else {
                        2 * p + 1
                    }
                }
            };
        }
    }
    // Root: its "down" starts the tour; its "up" slot is the terminal.
    next[2 * root] = match first_child(root) {
        Some(c) => 2 * c,
        None => 2 * root + 1,
    };
    next[2 * root + 1] = 2 * root + 1; // terminal (self-loop)
    weight[2 * root] = 0;
    weight[2 * root + 1] = 0;

    // Rank: suffix sums toward the terminal. depth(v) = total weight from
    // down(v) to the end equals... we need PREFIX sums from the start, so
    // rank suffix sums and subtract: suffix(down(v)) counts the +1 of v
    // itself plus everything after; depth(v) = total - suffix_after(v)
    // where total = suffix(start). Simpler: suffix sums S(e) along the
    // list; depth(v) = S(start) - S(down(v)) + weight(down(v)).
    let s = list_rank_weighted(&next, &weight, pram);
    let start = 2 * root;
    let mut depths = vec![0u32; n];
    for v in 0..n {
        if v == root {
            depths[v] = 0;
        } else {
            let d = s[start] - s[2 * v] + weight[2 * v];
            debug_assert!(d >= 0);
            depths[v] = d as u32;
        }
    }
    pram.round(n);
    depths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Model;

    #[test]
    fn list_rank_simple_chain() {
        // 0 -> 1 -> 2 -> 3 (terminal).
        let next = vec![1, 2, 3, 3];
        let mut pram = Pram::new(4, Model::Erew);
        let rank = list_rank(&next, &mut pram);
        assert_eq!(rank, vec![3, 2, 1, 0]);
    }

    #[test]
    fn list_rank_rounds_are_logarithmic() {
        let n = 1 << 12;
        let next: Vec<usize> = (0..n).map(|i| (i + 1).min(n - 1)).collect();
        let mut pram = Pram::new(n, Model::Erew);
        let rank = list_rank(&next, &mut pram);
        assert_eq!(rank[0], (n - 1) as u64);
        // Pointer jumping: ~log2(n) + 2 rounds of n ops each.
        assert!(
            pram.rounds() <= 12 + 4,
            "rounds {} exceed log n + slack",
            pram.rounds()
        );
    }

    #[test]
    fn list_rank_multiple_lists() {
        // Two lists: 0->1->1 and 2->3->4->4.
        let next = vec![1, 1, 3, 4, 4];
        let mut pram = Pram::new(8, Model::Erew);
        let rank = list_rank(&next, &mut pram);
        assert_eq!(rank, vec![1, 0, 2, 1, 0]);
    }

    #[test]
    fn traced_rank_matches_untraced_and_is_erew_clean() {
        use crate::shadow::ShadowMem;
        // A chain, a forest, and a single node.
        for next in [
            vec![1usize, 2, 3, 3],
            vec![1, 1, 3, 4, 4],
            vec![0],
            (0..257).map(|i| (i + 1).min(256)).collect::<Vec<_>>(),
        ] {
            let mut p1 = Pram::new(next.len(), Model::Erew);
            let expect = list_rank(&next, &mut p1);
            let mut p2 = Pram::new(next.len(), Model::Erew);
            let mut sh = ShadowMem::new(Model::Erew);
            let got = list_rank_traced(&next, &mut p2, &mut sh);
            assert_eq!(got, expect);
            assert!(sh.finish(), "violations: {:?}", sh.violations());
        }
    }

    #[test]
    fn naive_rank_matches_but_violates_erew() {
        use crate::shadow::ShadowMem;
        let next: Vec<usize> = (0..64).map(|i| (i + 1).min(63)).collect();
        let mut p1 = Pram::new(64, Model::Erew);
        let expect = list_rank(&next, &mut p1);
        let mut p2 = Pram::new(64, Model::Erew);
        let mut sh = ShadowMem::new(Model::Erew);
        let got = list_rank_naive_traced(&next, &mut p2, &mut sh);
        assert_eq!(got, expect, "naive replay must still compute ranks");
        assert!(!sh.finish(), "converged terminal reads must be flagged");
        let v = &sh.violations()[0];
        assert_eq!(v.phase, "listrank-naive/jump");
        assert!(!v.pairs.is_empty());
    }

    #[test]
    fn weighted_rank_sums_path_weights() {
        let next = vec![1, 2, 2];
        let weight = vec![10, 20, 5];
        let mut pram = Pram::new(4, Model::Erew);
        let acc = list_rank_weighted(&next, &weight, &mut pram);
        assert_eq!(acc[0], 35);
        assert_eq!(acc[1], 25);
        assert_eq!(acc[2], 5);
    }

    #[test]
    fn euler_depths_on_a_small_tree() {
        //      0
        //     / \
        //    1   2
        //   / \    \
        //  3   4    5
        let parent = vec![0, 0, 0, 1, 1, 2];
        let children = vec![vec![1, 2], vec![3, 4], vec![5], vec![], vec![], vec![]];
        let mut pram = Pram::new(16, Model::Erew);
        let depths = euler_tour_depths(&parent, &children, &mut pram);
        assert_eq!(depths, vec![0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn euler_depths_on_a_path_and_star() {
        // Path 0-1-2-3-4.
        let parent = vec![0, 0, 1, 2, 3];
        let children = vec![vec![1], vec![2], vec![3], vec![4], vec![]];
        let mut pram = Pram::new(16, Model::Erew);
        let depths = euler_tour_depths(&parent, &children, &mut pram);
        assert_eq!(depths, vec![0, 1, 2, 3, 4]);
        // Star.
        let parent = vec![0, 0, 0, 0];
        let children = vec![vec![1, 2, 3], vec![], vec![], vec![]];
        let depths = euler_tour_depths(&parent, &children, &mut pram);
        assert_eq!(depths, vec![0, 1, 1, 1]);
    }

    #[test]
    fn euler_depths_single_node() {
        let mut pram = Pram::new(1, Model::Erew);
        assert_eq!(euler_tour_depths(&[0], &[vec![]], &mut pram), vec![0]);
    }

    #[test]
    fn euler_depth_rounds_are_logarithmic() {
        // A random-ish binary tree of 2^11 nodes (complete).
        let n = (1 << 11) - 1;
        let parent: Vec<usize> = (0..n)
            .map(|i| if i == 0 { 0 } else { (i - 1) / 2 })
            .collect();
        let mut children = vec![Vec::new(); n];
        for i in 1..n {
            children[(i - 1) / 2].push(i);
        }
        let mut pram = Pram::new(4 * n, Model::Erew);
        let depths = euler_tour_depths(&parent, &children, &mut pram);
        assert_eq!(depths[n - 1], 10);
        assert!(pram.rounds() <= 20, "rounds {}", pram.rounds());
    }
}
