//! Instrumented shared memory for verifying PRAM access disciplines.
//!
//! The paper claims specific machine models for each algorithm: EREW for
//! preprocessing, CREW for cooperative search, CRCW only for indirect
//! retrieval. This module provides [`TracedMem`], a shared memory that
//! executes *virtual processors* round by round and records every access, so
//! tests can assert that an algorithm's access pattern actually obeys the
//! discipline it claims.
//!
//! Execution is deliberately deterministic and single-threaded: the checker
//! verifies the *round structure* of an algorithm (which accesses coincide
//! in one synchronous step), not its wall-clock behaviour. All processors of
//! a round observe the memory as it was at the start of the round; writes
//! are buffered and committed when the round ends, exactly as on a
//! synchronous PRAM.

use crate::cost::Model;
use std::collections::{HashMap, HashSet};

/// A single detected violation of an access discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Round in which the conflict occurred (0-based).
    pub round: u64,
    /// Memory cell index.
    pub cell: usize,
    /// Description of the conflict.
    pub kind: ConflictKind,
}

/// The kind of access conflict detected within a single round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// Two or more processors read the same cell (illegal under EREW).
    ConcurrentRead,
    /// Two or more processors wrote the same cell (illegal under EREW/CREW).
    ConcurrentWrite,
    /// A cell was both read and written in the same round (illegal under
    /// EREW/CREW; a synchronous PRAM step has a read phase and a write
    /// phase, so we flag read+write of one cell only when two *different*
    /// processors touch it, which is the conflict the models forbid).
    ReadWrite,
}

/// Shared memory of `T` cells with per-round access tracing.
///
/// Typical usage:
///
/// ```
/// use fc_pram::traced::TracedMem;
/// use fc_pram::Model;
///
/// let mut mem = TracedMem::new(vec![0i64; 8], Model::Crew);
/// // One synchronous round: 4 processors each write their own cell after
/// // all reading cell 0 (concurrent read: fine under CREW).
/// mem.round(4, |pid, ctx| {
///     let seed = *ctx.read(0);
///     ctx.write(pid + 1, seed + pid as i64);
/// });
/// assert!(mem.violations().is_empty());
/// ```
pub struct TracedMem<T> {
    cells: Vec<T>,
    model: Model,
    round: u64,
    violations: Vec<Violation>,
    dead: HashSet<usize>,
}

/// Per-processor handle used inside a round closure. All reads observe the
/// state at the beginning of the round; writes are buffered.
pub struct ProcCtx<'a, T> {
    pid: usize,
    cells: &'a [T],
    reads: Vec<usize>,
    writes: Vec<(usize, T)>,
}

impl<'a, T> ProcCtx<'a, T> {
    /// This processor's id within the round.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Read cell `idx` (start-of-round value), logging the access.
    pub fn read(&mut self, idx: usize) -> &T {
        self.reads.push(idx);
        &self.cells[idx]
    }

    /// Buffer a write of `value` to cell `idx`, applied at end of round.
    pub fn write(&mut self, idx: usize, value: T) {
        self.writes.push((idx, value));
    }
}

impl<T: Clone> TracedMem<T> {
    /// Wrap `cells` as a traced memory checked against `model`.
    pub fn new(cells: Vec<T>, model: Model) -> Self {
        TracedMem {
            cells,
            model,
            round: 0,
            violations: Vec::new(),
            dead: HashSet::new(),
        }
    }

    /// Mark virtual processor `pid` as dead: from the next round on, its
    /// body is never run — no reads, no writes, as if the processor halted.
    /// Fault plans use this to kill processors at chosen rounds and check
    /// that round-structured algorithms still commit a consistent state.
    pub fn kill(&mut self, pid: usize) {
        self.dead.insert(pid);
    }

    /// Pids marked dead so far (unordered).
    pub fn dead_pids(&self) -> impl Iterator<Item = usize> + '_ {
        self.dead.iter().copied()
    }

    /// Execute one synchronous round with `procs` virtual processors. Each
    /// processor runs `body(pid, ctx)`; accesses are checked against the
    /// discipline, then buffered writes are committed. Under CRCW, write
    /// conflicts resolve by *arbitrary* (here: highest pid wins), matching
    /// the arbitrary-CRCW model the paper's Theorem 6 needs.
    pub fn round<F>(&mut self, procs: usize, mut body: F)
    where
        F: FnMut(usize, &mut ProcCtx<'_, T>),
    {
        let mut read_count: HashMap<usize, usize> = HashMap::new();
        let mut write_count: HashMap<usize, usize> = HashMap::new();
        let mut readers: HashMap<usize, usize> = HashMap::new(); // cell -> a pid
        let mut writers: HashMap<usize, usize> = HashMap::new();
        let mut all_writes: Vec<(usize, usize, T)> = Vec::new(); // (pid, cell, value)

        for pid in 0..procs {
            if self.dead.contains(&pid) {
                continue;
            }
            let mut ctx = ProcCtx {
                pid,
                cells: &self.cells,
                reads: Vec::new(),
                writes: Vec::new(),
            };
            body(pid, &mut ctx);
            for r in ctx.reads {
                *read_count.entry(r).or_insert(0) += 1;
                readers.insert(r, pid);
            }
            for (c, v) in ctx.writes {
                *write_count.entry(c).or_insert(0) += 1;
                writers.insert(c, pid);
                all_writes.push((pid, c, v));
            }
        }

        // Check discipline.
        if self.model == Model::Erew {
            for (&cell, &cnt) in &read_count {
                if cnt > 1 {
                    self.violations.push(Violation {
                        round: self.round,
                        cell,
                        kind: ConflictKind::ConcurrentRead,
                    });
                }
            }
        }
        if self.model != Model::Crcw {
            for (&cell, &cnt) in &write_count {
                if cnt > 1 {
                    self.violations.push(Violation {
                        round: self.round,
                        cell,
                        kind: ConflictKind::ConcurrentWrite,
                    });
                }
            }
            for (&cell, &wpid) in &writers {
                if let Some(&rpid) = readers.get(&cell) {
                    if rpid != wpid {
                        self.violations.push(Violation {
                            round: self.round,
                            cell,
                            kind: ConflictKind::ReadWrite,
                        });
                    }
                }
            }
        }

        // Commit writes; highest pid wins on CRCW conflicts (arbitrary rule,
        // made deterministic for testability).
        all_writes.sort_by_key(|&(pid, cell, _)| (cell, pid));
        for (_, cell, v) in all_writes {
            self.cells[cell] = v;
        }
        self.round += 1;
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Immutable view of the memory contents (between rounds).
    pub fn cells(&self) -> &[T] {
        &self.cells
    }

    /// Consume the traced memory, returning its contents.
    pub fn into_cells(self) -> Vec<T> {
        self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erew_flags_concurrent_reads_crew_does_not() {
        for (model, expect) in [(Model::Erew, 1), (Model::Crew, 0), (Model::Crcw, 0)] {
            let mut mem = TracedMem::new(vec![42i64; 4], model);
            mem.round(3, |pid, ctx| {
                let v = *ctx.read(0); // every processor reads cell 0
                ctx.write(pid + 1, v);
            });
            let n = mem
                .violations()
                .iter()
                .filter(|v| v.kind == ConflictKind::ConcurrentRead)
                .count();
            assert_eq!(n, expect, "model {model:?}");
        }
    }

    #[test]
    fn crew_flags_concurrent_writes_crcw_does_not() {
        for (model, expect) in [(Model::Crew, true), (Model::Crcw, false)] {
            let mut mem = TracedMem::new(vec![0i64; 2], model);
            mem.round(4, |pid, ctx| {
                ctx.write(0, pid as i64);
            });
            let has = mem
                .violations()
                .iter()
                .any(|v| v.kind == ConflictKind::ConcurrentWrite);
            assert_eq!(has, expect, "model {model:?}");
        }
    }

    #[test]
    fn crcw_arbitrary_write_is_deterministic_highest_pid() {
        let mut mem = TracedMem::new(vec![0i64; 1], Model::Crcw);
        mem.round(5, |pid, ctx| ctx.write(0, pid as i64 * 10));
        assert_eq!(mem.cells()[0], 40);
        assert!(mem.violations().is_empty());
    }

    #[test]
    fn reads_observe_start_of_round_state() {
        let mut mem = TracedMem::new(vec![1i64, 2], Model::Crew);
        // pid 0 writes cell 1; pid 1 reads cell 0 — no conflict, and pid 1
        // must see the pre-round value even though pid 0 ran "first".
        mem.round(2, |pid, ctx| {
            if pid == 0 {
                ctx.write(1, 99);
            } else {
                assert_eq!(*ctx.read(0), 1);
            }
        });
        assert_eq!(mem.cells(), &[1, 99]);
        assert!(mem.violations().is_empty());
    }

    #[test]
    fn read_write_same_cell_different_procs_flagged() {
        let mut mem = TracedMem::new(vec![5i64], Model::Crew);
        mem.round(2, |pid, ctx| {
            if pid == 0 {
                let _ = ctx.read(0);
            } else {
                ctx.write(0, 6);
            }
        });
        assert!(mem
            .violations()
            .iter()
            .any(|v| v.kind == ConflictKind::ReadWrite));
    }

    #[test]
    fn own_read_then_write_is_legal() {
        let mut mem = TracedMem::new(vec![5i64], Model::Erew);
        mem.round(1, |_pid, ctx| {
            let v = *ctx.read(0);
            ctx.write(0, v + 1);
        });
        assert!(mem.violations().is_empty());
        assert_eq!(mem.cells()[0], 6);
    }

    #[test]
    fn dead_pids_are_skipped_entirely() {
        let mut mem = TracedMem::new(vec![0i64; 4], Model::Crew);
        mem.kill(1);
        mem.kill(2);
        mem.round(4, |pid, ctx| ctx.write(pid, 1 + pid as i64));
        assert_eq!(mem.cells(), &[1, 0, 0, 4]);
        assert_eq!(mem.dead_pids().count(), 2);
        assert!(mem.violations().is_empty());
    }

    #[test]
    fn violation_records_round_number() {
        let mut mem = TracedMem::new(vec![0i64; 2], Model::Erew);
        mem.round(1, |_pid, ctx| ctx.write(0, 1)); // clean round
        mem.round(2, |_pid, ctx| {
            let _ = ctx.read(1);
        }); // concurrent read in round 1
        assert_eq!(mem.violations().len(), 1);
        assert_eq!(mem.violations()[0].round, 1);
        assert_eq!(mem.violations()[0].cell, 1);
        assert_eq!(mem.rounds(), 2);
    }
}
