//! Instrumented shared memory for verifying PRAM access disciplines.
//!
//! The paper claims specific machine models for each algorithm: EREW for
//! preprocessing, CREW for cooperative search, CRCW only for indirect
//! retrieval. This module provides [`TracedMem`], a shared memory that
//! executes *virtual processors* round by round and records every access, so
//! tests can assert that an algorithm's access pattern actually obeys the
//! discipline it claims.
//!
//! Execution is deliberately deterministic and single-threaded: the checker
//! verifies the *round structure* of an algorithm (which accesses coincide
//! in one synchronous step), not its wall-clock behaviour. All processors of
//! a round observe the memory as it was at the start of the round; writes
//! are buffered and committed when the round ends, exactly as on a
//! synchronous PRAM.
//!
//! Conflict detection is shared with [`crate::shadow`] via
//! [`crate::conflict::RoundLog`], which tracks the full pid *set* per cell:
//! a cell read by pids {1, 2} and written by pid 2 is flagged as
//! [`ConflictKind::ReadWrite`] with the offending pair `(1, 2)` — the old
//! last-pid-wins bookkeeping masked exactly this case.

use crate::conflict::{Conflict, RoundLog};
use crate::cost::Model;
use std::collections::HashSet;

pub use crate::conflict::ConflictKind;

/// A single detected violation of an access discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Round in which the conflict occurred (0-based).
    pub round: u64,
    /// Memory cell index.
    pub cell: usize,
    /// Description of the conflict.
    pub kind: ConflictKind,
    /// Every conflicting pid pair on this cell this round, sorted. For
    /// [`ConflictKind::ReadWrite`] a pair is `(reader, writer)`; otherwise
    /// `(lower pid, higher pid)`.
    pub pairs: Vec<(usize, usize)>,
}

/// Shared memory of `T` cells with per-round access tracing.
///
/// Typical usage:
///
/// ```
/// use fc_pram::traced::TracedMem;
/// use fc_pram::Model;
///
/// let mut mem = TracedMem::new(vec![0i64; 8], Model::Crew);
/// // One synchronous round: 4 processors each write their own cell after
/// // all reading cell 0 (concurrent read: fine under CREW).
/// mem.round(4, |pid, ctx| {
///     let seed = *ctx.read(0);
///     ctx.write(pid + 1, seed + pid as i64);
/// });
/// assert!(mem.violations().is_empty());
/// ```
pub struct TracedMem<T> {
    cells: Vec<T>,
    model: Model,
    round: u64,
    violations: Vec<Violation>,
    dead: HashSet<usize>,
    pending_kills: Vec<(u64, usize)>,
}

/// Per-processor handle used inside a round closure. All reads observe the
/// state at the beginning of the round; writes are buffered.
pub struct ProcCtx<'a, T> {
    pid: usize,
    cells: &'a [T],
    reads: Vec<usize>,
    writes: Vec<(usize, T)>,
}

impl<'a, T> ProcCtx<'a, T> {
    /// This processor's id within the round.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// Read cell `idx` (start-of-round value), logging the access.
    pub fn read(&mut self, idx: usize) -> &T {
        self.reads.push(idx);
        &self.cells[idx]
    }

    /// Buffer a write of `value` to cell `idx`, applied at end of round.
    pub fn write(&mut self, idx: usize, value: T) {
        self.writes.push((idx, value));
    }
}

impl<T: Clone> TracedMem<T> {
    /// Wrap `cells` as a traced memory checked against `model`.
    pub fn new(cells: Vec<T>, model: Model) -> Self {
        TracedMem {
            cells,
            model,
            round: 0,
            violations: Vec::new(),
            dead: HashSet::new(),
            pending_kills: Vec::new(),
        }
    }

    /// Mark virtual processor `pid` as dead: from the next round on, its
    /// body is never run — no reads, no writes, as if the processor halted.
    /// Fault plans use this to kill processors at chosen rounds and check
    /// that round-structured algorithms still commit a consistent state.
    pub fn kill(&mut self, pid: usize) {
        self.dead.insert(pid);
    }

    /// Schedule `pid` to die at the start of round `at_round` (0-based),
    /// mirroring `Pram::schedule_failure`: the kill fires before the round
    /// with that index runs, so resilience tests can assert discipline holds
    /// in degraded mode, not just full-strength runs.
    pub fn schedule_kill(&mut self, at_round: u64, pid: usize) {
        if at_round <= self.round {
            self.dead.insert(pid);
        } else {
            self.pending_kills.push((at_round, pid));
        }
    }

    /// Pids marked dead so far (unordered).
    pub fn dead_pids(&self) -> impl Iterator<Item = usize> + '_ {
        self.dead.iter().copied()
    }

    /// Execute one synchronous round with `procs` virtual processors. Each
    /// processor runs `body(pid, ctx)`; accesses are checked against the
    /// discipline, then buffered writes are committed. Under CRCW, write
    /// conflicts resolve by *arbitrary* (here: highest pid wins), matching
    /// the arbitrary-CRCW model the paper's Theorem 6 needs.
    pub fn round<F>(&mut self, procs: usize, mut body: F)
    where
        F: FnMut(usize, &mut ProcCtx<'_, T>),
    {
        // Fire scheduled failures whose round has come, as `Pram` does.
        let now = self.round;
        let dead = &mut self.dead;
        self.pending_kills.retain(|&(at, pid)| {
            if at <= now {
                dead.insert(pid);
                false
            } else {
                true
            }
        });

        let mut log: RoundLog<usize> = RoundLog::new();
        let mut all_writes: Vec<(usize, usize, T)> = Vec::new(); // (pid, cell, value)

        for pid in 0..procs {
            if self.dead.contains(&pid) {
                continue;
            }
            let mut ctx = ProcCtx {
                pid,
                cells: &self.cells,
                reads: Vec::new(),
                writes: Vec::new(),
            };
            body(pid, &mut ctx);
            for r in ctx.reads {
                log.read(pid, r);
            }
            for (c, v) in ctx.writes {
                log.write(pid, c);
                all_writes.push((pid, c, v));
            }
        }

        for Conflict { cell, kind, pairs } in log.check(self.model) {
            self.violations.push(Violation {
                round: self.round,
                cell,
                kind,
                pairs,
            });
        }

        // Commit writes; highest pid wins on CRCW conflicts (arbitrary rule,
        // made deterministic for testability).
        all_writes.sort_by_key(|&(pid, cell, _)| (cell, pid));
        for (_, cell, v) in all_writes {
            self.cells[cell] = v;
        }
        self.round += 1;
    }

    /// All violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Immutable view of the memory contents (between rounds).
    pub fn cells(&self) -> &[T] {
        &self.cells
    }

    /// Consume the traced memory, returning its contents.
    pub fn into_cells(self) -> Vec<T> {
        self.cells
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erew_flags_concurrent_reads_crew_does_not() {
        for (model, expect) in [(Model::Erew, 1), (Model::Crew, 0), (Model::Crcw, 0)] {
            let mut mem = TracedMem::new(vec![42i64; 4], model);
            mem.round(3, |pid, ctx| {
                let v = *ctx.read(0); // every processor reads cell 0
                ctx.write(pid + 1, v);
            });
            let n = mem
                .violations()
                .iter()
                .filter(|v| v.kind == ConflictKind::ConcurrentRead)
                .count();
            assert_eq!(n, expect, "model {model:?}");
        }
    }

    #[test]
    fn crew_flags_concurrent_writes_crcw_does_not() {
        for (model, expect) in [(Model::Crew, true), (Model::Crcw, false)] {
            let mut mem = TracedMem::new(vec![0i64; 2], model);
            mem.round(4, |pid, ctx| {
                ctx.write(0, pid as i64);
            });
            let has = mem
                .violations()
                .iter()
                .any(|v| v.kind == ConflictKind::ConcurrentWrite);
            assert_eq!(has, expect, "model {model:?}");
        }
    }

    #[test]
    fn crcw_arbitrary_write_is_deterministic_highest_pid() {
        let mut mem = TracedMem::new(vec![0i64; 1], Model::Crcw);
        mem.round(5, |pid, ctx| ctx.write(0, pid as i64 * 10));
        assert_eq!(mem.cells()[0], 40);
        assert!(mem.violations().is_empty());
    }

    #[test]
    fn reads_observe_start_of_round_state() {
        let mut mem = TracedMem::new(vec![1i64, 2], Model::Crew);
        // pid 0 writes cell 1; pid 1 reads cell 0 — no conflict, and pid 1
        // must see the pre-round value even though pid 0 ran "first".
        mem.round(2, |pid, ctx| {
            if pid == 0 {
                ctx.write(1, 99);
            } else {
                assert_eq!(*ctx.read(0), 1);
            }
        });
        assert_eq!(mem.cells(), &[1, 99]);
        assert!(mem.violations().is_empty());
    }

    #[test]
    fn read_write_same_cell_different_procs_flagged() {
        let mut mem = TracedMem::new(vec![5i64], Model::Crew);
        mem.round(2, |pid, ctx| {
            if pid == 0 {
                let _ = ctx.read(0);
            } else {
                ctx.write(0, 6);
            }
        });
        assert!(mem
            .violations()
            .iter()
            .any(|v| v.kind == ConflictKind::ReadWrite));
    }

    #[test]
    fn own_read_then_write_is_legal() {
        let mut mem = TracedMem::new(vec![5i64], Model::Erew);
        mem.round(1, |_pid, ctx| {
            let v = *ctx.read(0);
            ctx.write(0, v + 1);
        });
        assert!(mem.violations().is_empty());
        assert_eq!(mem.cells()[0], 6);
    }

    #[test]
    fn dead_pids_are_skipped_entirely() {
        let mut mem = TracedMem::new(vec![0i64; 4], Model::Crew);
        mem.kill(1);
        mem.kill(2);
        mem.round(4, |pid, ctx| ctx.write(pid, 1 + pid as i64));
        assert_eq!(mem.cells(), &[1, 0, 0, 4]);
        assert_eq!(mem.dead_pids().count(), 2);
        assert!(mem.violations().is_empty());
    }

    #[test]
    fn violation_records_round_number() {
        let mut mem = TracedMem::new(vec![0i64; 2], Model::Erew);
        mem.round(1, |_pid, ctx| ctx.write(0, 1)); // clean round
        mem.round(2, |_pid, ctx| {
            let _ = ctx.read(1);
        }); // concurrent read in round 1
        assert_eq!(mem.violations().len(), 1);
        assert_eq!(mem.violations()[0].round, 1);
        assert_eq!(mem.violations()[0].cell, 1);
        assert_eq!(mem.rounds(), 2);
    }

    #[test]
    fn masked_read_write_conflict_is_detected() {
        // Regression for the last-pid-wins masking bug: cell 0 read by
        // pids 1 and 2 and written by pid 2. The old bookkeeping recorded
        // reader = 2 == writer and reported nothing; pid 1's read conflicts
        // with pid 2's write.
        let mut mem = TracedMem::new(vec![0i64; 4], Model::Crew);
        mem.round(3, |pid, ctx| {
            if pid >= 1 {
                let _ = ctx.read(0);
            }
            if pid == 2 {
                ctx.write(0, 7);
            }
        });
        let rw: Vec<&Violation> = mem
            .violations()
            .iter()
            .filter(|v| v.kind == ConflictKind::ReadWrite)
            .collect();
        assert_eq!(rw.len(), 1, "{:?}", mem.violations());
        assert_eq!(rw[0].cell, 0);
        assert_eq!(rw[0].pairs, vec![(1, 2)]);
    }

    #[test]
    fn all_conflicting_pairs_are_reported() {
        let mut mem = TracedMem::new(vec![0i64; 1], Model::Erew);
        mem.round(4, |_pid, ctx| {
            let _ = ctx.read(0);
        });
        assert_eq!(mem.violations().len(), 1);
        assert_eq!(
            mem.violations()[0].pairs,
            vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        );
    }

    #[test]
    fn scheduled_kill_fires_at_round() {
        let mut mem = TracedMem::new(vec![0i64; 4], Model::Crew);
        mem.schedule_kill(1, 3);
        mem.round(4, |pid, ctx| ctx.write(pid, 1)); // round 0: all alive
        mem.round(4, |pid, ctx| ctx.write(pid, 2)); // round 1: pid 3 dead
        assert_eq!(mem.cells(), &[2, 2, 2, 1]);
        assert_eq!(mem.dead_pids().collect::<Vec<_>>(), vec![3]);
        assert!(mem.violations().is_empty());
    }
}
