//! Textbook PRAM building blocks used throughout the reproduction.
//!
//! The paper leans on three classical results without restating them:
//!
//! * **Cooperative (p-ary) binary search** — Snir's optimal
//!   `O((log n)/log p)` CREW search in a sorted array (reference [16] of the
//!   paper). Used in Step 1 of the explicit search (Section 2.2).
//! * **Prefix sums** — `O(n/p + log p)` on EREW, used by Theorem 6's direct
//!   retrieval to allocate processors to reported items.
//! * **Parallel merge** — the building block of the level-synchronous
//!   fractional-cascading construction in `fc-catalog`.
//!
//! Each primitive comes in up to three flavours: a plain sequential
//! implementation, a *cost-charging* implementation that threads a
//! [`Pram`] counter and performs the PRAM round structure faithfully, and a
//! rayon implementation for wall-clock benchmarks.

use crate::cost::Pram;
use crate::shadow::{NoTrace, Region, Tracer};
use rayon::prelude::*;

/// Smallest index `i` such that `slice[i] >= y`, or `slice.len()` if none —
/// the `find(y, v)` primitive of the paper specialised to one catalog.
///
/// Branchless binary search: the loop carries an answer range `[base,
/// base + len]` and each iteration moves `base` by `half` via an arithmetic
/// select (`usize::from(cmp) * half`), which compiles to a conditional move
/// instead of a branch. On the uniformly random probe positions a cascade
/// descent produces, the data-dependent branch of a textbook search is
/// unpredictable (~50% mispredict); the `cmov` form keeps the pipeline full
/// and is what makes the flat-arena descent fast. Every cascade and search
/// call site routes through this one primitive.
///
/// Bit-identical to [`lower_bound_naive`] on every input, duplicates and
/// sentinel keys included (pinned by the `branchless_matches_naive_*` tests).
#[inline]
pub fn lower_bound<K: Ord>(slice: &[K], y: &K) -> usize {
    let mut base = 0usize;
    let mut len = slice.len();
    while len > 1 {
        let half = len / 2;
        // SAFETY-free select: base + half < base + len <= slice.len().
        base += usize::from(slice[base + half] < *y) * half;
        len -= half;
    }
    base + usize::from(len > 0 && slice[base] < *y)
}

/// Reference implementation of [`lower_bound`]: the standard-library
/// `partition_point` binary search. Kept public as the oracle the branchless
/// probe and the flat-arena property tests pin themselves against.
#[inline]
pub fn lower_bound_naive<K: Ord>(slice: &[K], y: &K) -> usize {
    slice.partition_point(|k| k < y)
}

/// Cooperative p-ary search: smallest index `i` with `slice[i] >= y`.
///
/// Implements Snir's scheme: each round, the `p` processors probe `p`
/// evenly spaced pivots of the remaining range, shrinking it by a factor of
/// `p + 1`; a CREW PRAM combines the probe results in `O(1)` time. The
/// number of rounds is `ceil(log(n+1) / log(p+1))`, i.e. the optimal
/// `O((log n)/log p)`.
///
/// The returned index is identical to [`lower_bound`]; `pram` is charged
/// one `p`-op round per iteration.
pub fn coop_lower_bound<K: Ord>(slice: &[K], y: &K, pram: &mut Pram) -> usize {
    coop_lower_bound_traced(slice, y, pram, &mut NoTrace, ("arr", 0), ("query", 0))
}

/// [`coop_lower_bound`] with every logical access reported to a [`Tracer`].
///
/// `arr` names the sorted array's region (cell `i` = `slice[i]`) and
/// `query` the shared query-key cell (`query[0]`). The replay uses the CREW
/// round structure of Snir's scheme:
///
/// * **probe round** — all `k` processors read the shared query key and
///   range cursor (concurrent reads: legal under CREW, the canary under
///   EREW) plus one distinct pivot each, then write a private verdict cell;
/// * **combine round** — each processor reads its own and its right
///   neighbour's verdict (≤ 2 readers per cell), and the unique boundary
///   processor publishes the narrowed range to the cursor cell
///   (`("clb-cursor", arr_instance)`) — an exclusive write.
///
/// Monomorphizes to exactly the untraced search with [`NoTrace`]; `pram`
/// charges are identical either way.
pub fn coop_lower_bound_traced<K: Ord, Tr: Tracer>(
    slice: &[K],
    y: &K,
    pram: &mut Pram,
    tr: &mut Tr,
    arr: Region,
    query: Region,
) -> usize {
    let p = pram.processors();
    let scratch = ("clb-scratch", arr.1);
    let cursor = ("clb-cursor", arr.1);
    let mut first = true;
    let mut lo = 0usize; // invariant: all indices < lo have slice[i] < y
    let mut hi = slice.len(); // invariant: all indices >= hi have slice[i] >= y
    while lo < hi {
        let len = hi - lo;
        if p == 1 {
            // Degenerates to ordinary binary search, one probe per round —
            // a single processor is trivially exclusive.
            let mid = lo + len / 2;
            if tr.live() {
                if !first {
                    tr.read(0, cursor, 0);
                }
                tr.read(0, query, 0);
                tr.read(0, arr, mid);
                tr.write(0, cursor, 0);
                tr.barrier();
            }
            pram.round(1);
            if slice[mid] < *y {
                lo = mid + 1;
            } else {
                hi = mid;
            }
            first = false;
            continue;
        }
        // k = min(p, len) processors probe the first element of each of k
        // equal segments of the range (the probe at `lo` guarantees strict
        // progress). Each processor learns whether its pivot is < y; a CREW
        // PRAM locates the boundary between "< y" and ">= y" pivots in O(1),
        // narrowing the range to one segment of length <= ceil(len / k).
        let k = p.min(len);
        if tr.live() {
            for j in 0..k {
                if !first {
                    tr.read(j, cursor, 0);
                }
                tr.read(j, query, 0);
                tr.read(j, arr, lo + (len * j) / k);
                tr.write(j, scratch, j);
            }
            tr.barrier();
            // Combine: neighbour reads plus the boundary processor's
            // exclusive cursor write. O(1) CREW time, already covered by
            // the single round charged below.
            let mut boundary = 0usize;
            for j in 0..k {
                tr.read(j, scratch, j);
                if j + 1 < k {
                    tr.read(j, scratch, j + 1);
                }
                if slice[lo + (len * j) / k] < *y {
                    boundary = j;
                }
            }
            tr.write(boundary, cursor, 0);
            tr.barrier();
        }
        pram.round(k);
        let mut new_lo = lo;
        let mut new_hi = hi;
        for j in 0..k {
            let pos = lo + (len * j) / k;
            debug_assert!(pos < hi);
            if slice[pos] < *y {
                new_lo = new_lo.max(pos + 1);
            } else {
                new_hi = new_hi.min(pos);
            }
        }
        // The probes are consistent (the array is sorted), so the surviving
        // range is exactly one inter-pivot segment.
        debug_assert!(new_lo <= new_hi);
        debug_assert!(new_hi - new_lo < hi - lo, "range must shrink");
        lo = new_lo;
        hi = new_hi;
        first = false;
    }
    lo
}

/// Exclusive prefix sums of `values`, sequentially. Returns a vector `out`
/// with `out[i] = sum(values[..i])` and additionally the total sum.
pub fn prefix_sum_seq(values: &[u64]) -> (Vec<u64>, u64) {
    let mut out = Vec::with_capacity(values.len());
    let mut acc = 0u64;
    for &v in values {
        out.push(acc);
        acc += v;
    }
    (out, acc)
}

/// Exclusive prefix sums with PRAM cost accounting: `O(n/p + log p)` steps
/// (blocked two-pass scheme: per-block sequential sums, a log-depth scan of
/// the `p` block totals, then per-block fix-up).
pub fn prefix_sum_cost(values: &[u64], pram: &mut Pram) -> (Vec<u64>, u64) {
    let n = values.len();
    let p = pram.processors().min(n.max(1));
    if n == 0 {
        return (Vec::new(), 0);
    }
    let block = n.div_ceil(p);
    // Pass 1: each processor sums its block (n/p rounds of p ops).
    pram.round(n);
    // Scan of block totals: log p rounds of <= p ops.
    let mut d = 1;
    while d < p {
        pram.round(p - d);
        d *= 2;
    }
    // Pass 2: each processor writes its block's prefixes.
    pram.round(n);
    let _ = block;
    prefix_sum_seq(values)
}

/// Exclusive prefix sums using rayon (two-pass blocked scan) for wall-clock
/// benchmarks. Produces the same output as [`prefix_sum_seq`].
pub fn prefix_sum_par(values: &[u64]) -> (Vec<u64>, u64) {
    let n = values.len();
    if n < 4096 {
        return prefix_sum_seq(values);
    }
    let threads = rayon::current_num_threads().max(1);
    let block = n.div_ceil(threads);
    let totals: Vec<u64> = values
        .par_chunks(block)
        .map(|c| c.iter().sum::<u64>())
        .collect();
    let (offsets, total) = prefix_sum_seq(&totals);
    let mut out = vec![0u64; n];
    out.par_chunks_mut(block)
        .zip(values.par_chunks(block))
        .zip(offsets.par_iter())
        .for_each(|((out_chunk, in_chunk), &off)| {
            let mut acc = off;
            for (o, &v) in out_chunk.iter_mut().zip(in_chunk) {
                *o = acc;
                acc += v;
            }
        });
    (out, total)
}

/// Merge two sorted slices into a new sorted vector, sequentially.
pub fn merge_seq<K: Ord + Clone>(a: &[K], b: &[K]) -> Vec<K> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i].clone());
            i += 1;
        } else {
            out.push(b[j].clone());
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merge two sorted slices, charging PRAM cost for the classic CREW
/// parallel merge: each element binary-searches its rank in the other slice
/// (`O(log n)` depth, `O(n)` ops per round → `ceil(n/p) * 1` rounds of
/// rank-finding charged as `n log n / p`... more precisely we charge the
/// standard `O((n/p) log n)` EREW bound used by the level-synchronous
/// cascade build, or `O(n/p + log n)` if `optimal` is set (Hagerup–Rüb
/// style merging).
pub fn merge_cost<K: Ord + Clone>(a: &[K], b: &[K], pram: &mut Pram, optimal: bool) -> Vec<K> {
    let n = a.len() + b.len();
    if n > 0 {
        if optimal {
            // O(n/p + log n) optimal merge.
            pram.round(n);
            let depth = (usize::BITS - n.leading_zeros()) as usize;
            pram.seq(depth);
        } else {
            // Rank-by-binary-search merge: n ops each costing log n depth.
            let depth = (usize::BITS - n.leading_zeros()) as usize;
            for _ in 0..depth {
                pram.round(n);
            }
        }
    }
    merge_seq(a, b)
}

/// Merge two sorted slices with rayon: divide-and-conquer on the larger
/// slice's median. Falls back to sequential below a grain size.
pub fn merge_par<K: Ord + Clone + Send + Sync>(a: &[K], b: &[K]) -> Vec<K> {
    let mut out = vec![None; a.len() + b.len()];
    merge_par_into(a, b, &mut out);
    out.into_iter().map(|o| o.expect("filled")).collect()
}

fn merge_par_into<K: Ord + Clone + Send + Sync>(a: &[K], b: &[K], out: &mut [Option<K>]) {
    const GRAIN: usize = 8192;
    debug_assert_eq!(out.len(), a.len() + b.len());
    if a.len() + b.len() <= GRAIN {
        for (slot, k) in out.iter_mut().zip(merge_seq(a, b)) {
            *slot = Some(k);
        }
        return;
    }
    let (big, small, big_first) = if a.len() >= b.len() {
        (a, b, true)
    } else {
        (b, a, false)
    };
    let mid = big.len() / 2;
    let pivot = &big[mid];
    let split = small.partition_point(|k| k < pivot);
    let (big_lo, big_hi) = big.split_at(mid);
    let (small_lo, small_hi) = small.split_at(split);
    let cut = big_lo.len() + small_lo.len();
    let (out_lo, out_hi) = out.split_at_mut(cut);
    let (a_lo, b_lo, a_hi, b_hi) = if big_first {
        (big_lo, small_lo, big_hi, small_hi)
    } else {
        (small_lo, big_lo, small_hi, big_hi)
    };
    rayon::join(
        || merge_par_into(a_lo, b_lo, out_lo),
        || merge_par_into(a_hi, b_hi, out_hi),
    );
}

/// Take every `stride`-th element of `slice` starting at index `stride - 1`
/// (the sampling operation of fractional cascading).
pub fn sample_every<K: Clone>(slice: &[K], stride: usize) -> Vec<K> {
    assert!(stride >= 1);
    slice
        .iter()
        .skip(stride - 1)
        .step_by(stride)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Model;

    fn check_clb(slice: &[i64], y: i64, p: usize) {
        let mut pram = Pram::new(p, Model::Crew);
        let got = coop_lower_bound(slice, &y, &mut pram);
        assert_eq!(
            got,
            lower_bound(slice, &y),
            "slice len {} y {y} p {p}",
            slice.len()
        );
    }

    #[test]
    fn branchless_matches_naive_adversarial() {
        // Empty, all-equal, and saturated-key (i64::MAX sentinel) catalogs —
        // the shapes that break off-by-one rewrites of binary search.
        let catalogs: Vec<Vec<i64>> = vec![
            vec![],
            vec![7],
            vec![5; 1],
            vec![5; 2],
            vec![5; 17],
            vec![i64::MAX],
            vec![i64::MAX; 9],
            vec![1, 5, 5, 5, 5, 9],
            vec![i64::MIN, -3, 0, 0, 4, i64::MAX, i64::MAX],
            (0..257).map(|i| i * 3).collect(),
        ];
        for cat in &catalogs {
            let mut probes = vec![i64::MIN, -4, 0, 4, 5, 6, 9, 10, i64::MAX];
            probes.extend(cat.iter().copied());
            for y in probes {
                assert_eq!(
                    lower_bound(cat, &y),
                    lower_bound_naive(cat, &y),
                    "cat {cat:?} y {y}"
                );
            }
        }
    }

    #[test]
    fn branchless_matches_naive_exhaustive_small() {
        // Every sorted 0/1/2-valued catalog up to length 6, every query in
        // range: exhaustively pins the cmov probe to the oracle.
        for len in 0..=6usize {
            for code in 0..3usize.pow(len as u32) {
                let mut c = code;
                let cat: Vec<u8> = (0..len)
                    .map(|_| {
                        let d = (c % 3) as u8;
                        c /= 3;
                        d
                    })
                    .collect();
                if !cat.windows(2).all(|w| w[0] <= w[1]) {
                    continue;
                }
                for y in 0u8..=3 {
                    assert_eq!(
                        lower_bound(&cat, &y),
                        lower_bound_naive(&cat, &y),
                        "cat {cat:?} y {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn coop_lower_bound_matches_sequential() {
        let slice: Vec<i64> = (0..1000).map(|i| i * 3).collect();
        for p in [1, 2, 3, 4, 7, 16, 100, 1000, 5000] {
            for y in [-5, 0, 1, 2, 3, 1497, 1498, 1499, 2997, 2998, 10000] {
                check_clb(&slice, y, p);
            }
        }
    }

    #[test]
    fn coop_lower_bound_empty_and_singleton() {
        check_clb(&[], 5, 4);
        check_clb(&[7], 5, 4);
        check_clb(&[7], 7, 4);
        check_clb(&[7], 9, 4);
    }

    #[test]
    fn coop_lower_bound_duplicates() {
        let slice = vec![1i64, 5, 5, 5, 5, 9];
        for p in [1, 2, 4, 8] {
            check_clb(&slice, 5, p);
            check_clb(&slice, 4, p);
            check_clb(&slice, 6, p);
        }
    }

    #[test]
    fn coop_lower_bound_step_count_is_logarithmic_base_p() {
        let slice: Vec<i64> = (0..(1 << 16)).collect();
        let mut p1 = Pram::new(1, Model::Crew);
        coop_lower_bound(&slice, &12345, &mut p1);
        let mut p256 = Pram::new(256, Model::Crew);
        coop_lower_bound(&slice, &12345, &mut p256);
        // log_2(65536) = 16 rounds vs log_257(65536) = 2 rounds.
        assert!(p1.rounds() >= 16);
        assert!(p256.rounds() <= 3, "rounds = {}", p256.rounds());
    }

    #[test]
    fn traced_search_is_crew_clean_and_matches() {
        use crate::shadow::ShadowMem;
        let slice: Vec<i64> = (0..500).map(|i| i * 3).collect();
        for p in [1, 4, 23, 512] {
            for y in [-5, 0, 1, 750, 1497, 5000] {
                let mut pram = Pram::new(p, Model::Crew);
                let mut sh = ShadowMem::new(Model::Crew);
                let got =
                    coop_lower_bound_traced(&slice, &y, &mut pram, &mut sh, ("arr", 0), ("q", 0));
                assert_eq!(got, lower_bound(&slice, &y), "p {p} y {y}");
                assert!(sh.finish(), "p {p} y {y}: {:?}", sh.violations());
            }
        }
    }

    #[test]
    fn traced_search_violates_erew_when_cooperative() {
        use crate::shadow::ShadowMem;
        let slice: Vec<i64> = (0..500).collect();
        // p > 1: the shared query-key read breaks EREW.
        let mut pram = Pram::new(8, Model::Crew);
        let mut sh = ShadowMem::new(Model::Erew);
        coop_lower_bound_traced(&slice, &250, &mut pram, &mut sh, ("arr", 0), ("q", 0));
        assert!(!sh.finish(), "shared query read must be flagged");
        assert!(sh.violations().iter().any(|v| v.cell == ("q", 0, 0)));
        // p == 1 is trivially exclusive.
        let mut pram = Pram::new(1, Model::Crew);
        let mut sh = ShadowMem::new(Model::Erew);
        coop_lower_bound_traced(&slice, &250, &mut pram, &mut sh, ("arr", 0), ("q", 0));
        assert!(sh.finish(), "{:?}", sh.violations());
    }

    #[test]
    fn traced_search_charges_same_pram_cost() {
        let slice: Vec<i64> = (0..(1 << 12)).collect();
        for p in [1, 16, 256] {
            let mut a = Pram::new(p, Model::Crew);
            coop_lower_bound(&slice, &1234, &mut a);
            let mut b = Pram::new(p, Model::Crew);
            let mut sh = crate::shadow::ShadowMem::new(Model::Crew);
            coop_lower_bound_traced(&slice, &1234, &mut b, &mut sh, ("arr", 0), ("q", 0));
            assert_eq!(a.rounds(), b.rounds());
            assert_eq!(a.steps(), b.steps());
        }
    }

    #[test]
    fn prefix_sum_variants_agree() {
        let values: Vec<u64> = (0..10_000).map(|i| (i * 7 + 3) % 101).collect();
        let (s, ts) = prefix_sum_seq(&values);
        let (p, tp) = prefix_sum_par(&values);
        let mut pram = Pram::new(16, Model::Erew);
        let (c, tc) = prefix_sum_cost(&values, &mut pram);
        assert_eq!(s, p);
        assert_eq!(s, c);
        assert_eq!(ts, tp);
        assert_eq!(ts, tc);
        assert!(pram.steps() > 0);
    }

    #[test]
    fn prefix_sum_empty() {
        let (v, t) = prefix_sum_seq(&[]);
        assert!(v.is_empty());
        assert_eq!(t, 0);
        let (v, t) = prefix_sum_par(&[]);
        assert!(v.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn prefix_sum_cost_scales_with_processors() {
        let values: Vec<u64> = vec![1; 1 << 14];
        let mut p1 = Pram::new(1, Model::Erew);
        prefix_sum_cost(&values, &mut p1);
        let mut p64 = Pram::new(64, Model::Erew);
        prefix_sum_cost(&values, &mut p64);
        assert!(p64.steps() * 8 < p1.steps());
    }

    #[test]
    fn merges_agree() {
        let a: Vec<i64> = (0..5000).map(|i| i * 2).collect();
        let b: Vec<i64> = (0..5000).map(|i| i * 2 + 1).collect();
        let expect: Vec<i64> = (0..10_000).collect();
        assert_eq!(merge_seq(&a, &b), expect);
        assert_eq!(merge_par(&a, &b), expect);
        let mut pram = Pram::new(8, Model::Erew);
        assert_eq!(merge_cost(&a, &b, &mut pram, false), expect);
        assert_eq!(merge_cost(&a, &b, &mut pram, true), expect);
    }

    #[test]
    fn merge_handles_empty_and_skew() {
        assert_eq!(merge_seq::<i64>(&[], &[]), Vec::<i64>::new());
        assert_eq!(merge_seq(&[1, 2], &[]), vec![1, 2]);
        assert_eq!(merge_par(&[], &[3, 4]), vec![3, 4]);
        let a: Vec<i64> = (0..20_000).collect();
        let b = vec![-1i64, 100_000];
        let m = merge_par(&a, &b);
        assert_eq!(m.len(), a.len() + 2);
        assert_eq!(m[0], -1);
        assert_eq!(*m.last().unwrap(), 100_000);
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_preserves_duplicates() {
        let a = vec![1i64, 1, 2, 2];
        let b = vec![1i64, 2, 3];
        let m = merge_seq(&a, &b);
        assert_eq!(m, vec![1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn sample_every_strides() {
        let v: Vec<i64> = (1..=10).collect();
        assert_eq!(sample_every(&v, 1), v);
        assert_eq!(sample_every(&v, 2), vec![2, 4, 6, 8, 10]);
        assert_eq!(sample_every(&v, 4), vec![4, 8]);
        assert_eq!(sample_every(&v, 11), Vec::<i64>::new());
    }
}
