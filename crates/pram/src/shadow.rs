//! Provenance-tracking shadow memory for replaying the *real* algorithms.
//!
//! Unlike [`crate::traced::TracedMem`], which owns a flat cell array and
//! forces algorithms to be rewritten against it, the shadow memory records
//! only the *provenance* of accesses: every read/write is reported as
//! `(pid, round, phase label, logical cell)` while the values keep living in
//! the ordinary data structures. The production code paths stay untouched —
//! they are made generic over a [`Tracer`] and instantiated with the
//! zero-sized [`NoTrace`] on the fast path (monomorphized to nothing) or
//! with [`ShadowMem`] when the discipline analyzer replays them.
//!
//! A *logical cell* is `(region, index)`, where a [`Region`] names one
//! array-like piece of the structure, e.g. `("aug", node)` for node's
//! augmented catalog or `("query", 0)` for the shared query key. One
//! synchronous round runs from barrier to barrier; conflicts are only
//! checked within a round, which is what the EREW/CREW definitions demand.

use crate::conflict::{Access, Conflict, ConflictKind, RoundLog};
use crate::cost::Model;
use std::collections::{HashMap, HashSet};

/// A named logical address space: `(kind, instance)`, e.g. `("aug", node_id)`.
pub type Region = (&'static str, usize);

/// A logical cell: one slot of a region.
pub type Cell = (&'static str, usize, usize);

/// Access-tracing hook threaded through the real algorithms.
///
/// Every method has a no-op default so the fast path ([`NoTrace`]) costs
/// nothing; implementations override what they need. Call sites guard
/// per-element loops with [`Tracer::live`] so even the loop disappears
/// when tracing is off.
pub trait Tracer {
    /// Whether this tracer records anything. `false` lets call sites skip
    /// whole emission loops.
    #[inline]
    fn live(&self) -> bool {
        false
    }

    /// Label the current algorithm phase (e.g. `"build/merge"`). Stays in
    /// effect until the next call.
    #[inline]
    fn phase(&mut self, _label: &'static str) {}

    /// Record that `pid` read `region[index]` in the current round.
    #[inline]
    fn read(&mut self, _pid: usize, _region: Region, _index: usize) {}

    /// Record that `pid` wrote `region[index]` in the current round.
    #[inline]
    fn write(&mut self, _pid: usize, _region: Region, _index: usize) {}

    /// End the current synchronous round: check it against the model and
    /// start the next one.
    #[inline]
    fn barrier(&mut self) {}
}

/// The zero-overhead tracer: every hook is a no-op and `live()` is `false`,
/// so traced code paths monomorphize back to the plain algorithms.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoTrace;

impl Tracer for NoTrace {}

/// Accumulated statistics for one phase label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Rounds (barriers) that recorded at least one access under this label.
    pub rounds: u64,
    /// Total reads recorded under this label.
    pub reads: u64,
    /// Total writes recorded under this label.
    pub writes: u64,
    /// Max distinct processors reading one cell in one round.
    pub max_readers: usize,
    /// Max distinct processors writing one cell in one round.
    pub max_writers: usize,
}

/// One discipline violation with phase-level blame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowViolation {
    /// Round in which the conflict happened (0-based).
    pub round: u64,
    /// Phase label in effect when the round ended.
    pub phase: &'static str,
    /// The conflicting logical cell.
    pub cell: Cell,
    /// What rule was broken.
    pub kind: ConflictKind,
    /// Every conflicting pid pair (see [`Conflict::pairs`]).
    pub pairs: Vec<(usize, usize)>,
}

/// Deterministic minimal repro of the first violation: enough to replay
/// the offending round in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// Round of the first violation.
    pub round: u64,
    /// Phase label in effect.
    pub phase: &'static str,
    /// The conflicting cell.
    pub cell: Cell,
    /// Sorted distinct pids involved in the conflict.
    pub pids: Vec<usize>,
    /// The cell's ordered access trace in that round.
    pub trace: Vec<(usize, Access)>,
}

/// Provenance-tracking shadow memory implementing [`Tracer`].
#[derive(Debug)]
pub struct ShadowMem {
    model: Model,
    round: u64,
    phase: &'static str,
    log: RoundLog<Cell>,
    violations: Vec<ShadowViolation>,
    repro: Option<Repro>,
    stats: HashMap<&'static str, PhaseStats>,
    dead: HashSet<usize>,
    pending_kills: Vec<(u64, usize)>,
    dropped_dead_accesses: u64,
}

impl ShadowMem {
    /// New shadow memory checking against `model`.
    pub fn new(model: Model) -> Self {
        ShadowMem {
            model,
            round: 0,
            phase: "init",
            log: RoundLog::new(),
            violations: Vec::new(),
            repro: None,
            stats: HashMap::new(),
            dead: HashSet::new(),
            pending_kills: Vec::new(),
            dropped_dead_accesses: 0,
        }
    }

    /// The model this shadow memory checks against.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Current round index (number of barriers so far).
    pub fn round_index(&self) -> u64 {
        self.round
    }

    /// Kill `pid` immediately: its future accesses are dropped (a failed
    /// processor touches nothing).
    pub fn kill(&mut self, pid: usize) {
        self.dead.insert(pid);
    }

    /// Schedule `pid` to die at the start of round `at_round` (0-based),
    /// mirroring `Pram::schedule_failure`.
    pub fn schedule_kill(&mut self, at_round: u64, pid: usize) {
        if at_round <= self.round {
            self.dead.insert(pid);
        } else {
            self.pending_kills.push((at_round, pid));
        }
    }

    /// Pids currently dead.
    pub fn dead_pids(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.dead.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Accesses silently dropped because their pid was dead.
    pub fn dropped_dead_accesses(&self) -> u64 {
        self.dropped_dead_accesses
    }

    /// All violations so far, in detection order (round-major, then
    /// deterministic cell order within a round).
    pub fn violations(&self) -> &[ShadowViolation] {
        &self.violations
    }

    /// Minimal repro of the first violation, if any.
    pub fn repro(&self) -> Option<&Repro> {
        self.repro.as_ref()
    }

    /// Per-phase access statistics, sorted by phase label.
    pub fn phase_stats(&self) -> Vec<(&'static str, PhaseStats)> {
        let mut v: Vec<(&'static str, PhaseStats)> =
            self.stats.iter().map(|(&k, &s)| (k, s)).collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Finish: flush a trailing unbarriered round, then report whether the
    /// run was clean.
    pub fn finish(&mut self) -> bool {
        if !self.log.is_empty() {
            self.barrier();
        }
        self.violations.is_empty()
    }
}

impl Tracer for ShadowMem {
    #[inline]
    fn live(&self) -> bool {
        true
    }

    fn phase(&mut self, label: &'static str) {
        // A phase switch mid-round would blur blame; flush first.
        if !self.log.is_empty() {
            self.barrier();
        }
        self.phase = label;
        self.stats.entry(label).or_default();
    }

    fn read(&mut self, pid: usize, region: Region, index: usize) {
        if self.dead.contains(&pid) {
            self.dropped_dead_accesses += 1;
            return;
        }
        self.log.read(pid, (region.0, region.1, index));
    }

    fn write(&mut self, pid: usize, region: Region, index: usize) {
        if self.dead.contains(&pid) {
            self.dropped_dead_accesses += 1;
            return;
        }
        self.log.write(pid, (region.0, region.1, index));
    }

    fn barrier(&mut self) {
        if !self.log.is_empty() {
            let stats = self.stats.entry(self.phase).or_default();
            stats.rounds += 1;
            stats.reads += self.log.reads();
            stats.writes += self.log.writes();
            stats.max_readers = stats.max_readers.max(self.log.max_readers());
            stats.max_writers = stats.max_writers.max(self.log.max_writers());

            for Conflict { cell, kind, pairs } in self.log.check(self.model) {
                if self.repro.is_none() {
                    let mut pids: Vec<usize> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
                    pids.sort_unstable();
                    pids.dedup();
                    self.repro = Some(Repro {
                        round: self.round,
                        phase: self.phase,
                        cell,
                        pids,
                        trace: self.log.trace(cell),
                    });
                }
                self.violations.push(ShadowViolation {
                    round: self.round,
                    phase: self.phase,
                    cell,
                    kind,
                    pairs,
                });
            }
            self.log.clear();
        }
        self.round += 1;
        let now = self.round;
        let dead = &mut self.dead;
        self.pending_kills.retain(|&(at, pid)| {
            if at <= now {
                dead.insert(pid);
                false
            } else {
                true
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_erew_round() {
        let mut sh = ShadowMem::new(Model::Erew);
        sh.phase("scatter");
        for pid in 0..8 {
            sh.read(pid, ("in", 0), pid);
            sh.write(pid, ("out", 0), pid);
        }
        sh.barrier();
        assert!(sh.finish());
        let stats = sh.phase_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].1.rounds, 1);
        assert_eq!(stats[0].1.reads, 8);
        assert_eq!(stats[0].1.max_readers, 1);
    }

    #[test]
    fn violation_carries_phase_blame_and_repro() {
        let mut sh = ShadowMem::new(Model::Erew);
        sh.phase("hop");
        for pid in 0..3 {
            sh.read(pid, ("query", 0), 0);
        }
        sh.barrier();
        assert!(!sh.finish());
        let v = &sh.violations()[0];
        assert_eq!(v.phase, "hop");
        assert_eq!(v.round, 0);
        assert_eq!(v.kind, ConflictKind::ConcurrentRead);
        assert_eq!(v.pairs, vec![(0, 1), (0, 2), (1, 2)]);
        let r = sh.repro().expect("repro");
        assert_eq!(r.pids, vec![0, 1, 2]);
        assert_eq!(r.trace.len(), 3);
        assert_eq!(r.cell, ("query", 0, 0));
    }

    #[test]
    fn crew_allows_shared_reads_but_not_shared_writes() {
        let mut sh = ShadowMem::new(Model::Crew);
        sh.phase("windows");
        for pid in 0..4 {
            sh.read(pid, ("query", 0), 0);
            sh.write(pid, ("res", 0), 0);
        }
        sh.barrier();
        assert!(!sh.finish());
        assert!(sh
            .violations()
            .iter()
            .all(|v| v.kind != ConflictKind::ConcurrentRead));
        assert!(sh
            .violations()
            .iter()
            .any(|v| v.kind == ConflictKind::ConcurrentWrite));
    }

    #[test]
    fn scheduled_kill_drops_accesses() {
        let mut sh = ShadowMem::new(Model::Erew);
        sh.schedule_kill(1, 0);
        sh.phase("work");
        // Round 0: pid 0 still alive; both pids share a cell -> violation.
        sh.read(0, ("x", 0), 0);
        sh.read(1, ("x", 0), 0);
        sh.barrier();
        // Round 1: pid 0 dead; same accesses now clean.
        sh.read(0, ("x", 0), 0);
        sh.read(1, ("x", 0), 0);
        sh.barrier();
        assert_eq!(sh.violations().len(), 1);
        assert_eq!(sh.violations()[0].round, 0);
        assert_eq!(sh.dead_pids(), vec![0]);
        assert_eq!(sh.dropped_dead_accesses(), 1);
    }

    #[test]
    fn phase_switch_flushes_round() {
        let mut sh = ShadowMem::new(Model::Erew);
        sh.phase("a");
        sh.read(0, ("x", 0), 0);
        sh.phase("b"); // implicit barrier: the read belongs to "a"
        sh.read(1, ("x", 0), 0);
        sh.barrier();
        assert!(sh.finish(), "accesses in different rounds never conflict");
        let stats = sh.phase_stats();
        assert_eq!(stats.iter().map(|&(_, s)| s.rounds).sum::<u64>(), 2);
    }
}
