//! The violation engine shared by [`crate::traced`] and [`crate::shadow`].
//!
//! One synchronous PRAM round is a bag of `(pid, access, cell)` records.
//! The engine keeps the full pid *set* per cell (not just one witness, which
//! would mask conflicts — see the `TracedMem` regression tests) and reports
//! **every** conflicting pair per cell per round, plus the deterministic
//! access trace of any cell, so a violation can be turned into a minimal
//! repro (round + pid set + ordered cell trace).

use crate::cost::Model;
use std::collections::HashMap;
use std::hash::Hash;

/// The kind of access conflict detected within a single round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ConflictKind {
    /// Two or more processors read the same cell (illegal under EREW).
    ConcurrentRead,
    /// Two or more processors wrote the same cell (illegal under EREW/CREW).
    ConcurrentWrite,
    /// A cell was both read and written by *different* processors in the
    /// same round (illegal under EREW/CREW; a processor may read and write
    /// its own cell, because a synchronous step has a read phase and a
    /// write phase).
    ReadWrite,
}

impl ConflictKind {
    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ConflictKind::ConcurrentRead => "concurrent-read",
            ConflictKind::ConcurrentWrite => "concurrent-write",
            ConflictKind::ReadWrite => "read-write",
        }
    }
}

/// Read or write, for access traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The processor read the cell.
    Read,
    /// The processor wrote the cell.
    Write,
}

/// One detected conflict: every offending pid pair on one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict<C> {
    /// The conflicting cell.
    pub cell: C,
    /// What discipline rule the accesses break.
    pub kind: ConflictKind,
    /// Every conflicting pid pair, sorted. For `ReadWrite` the pair is
    /// `(reader, writer)`; for the others it is `(lower pid, higher pid)`.
    pub pairs: Vec<(usize, usize)>,
}

/// Accumulates the accesses of one synchronous round.
#[derive(Debug)]
pub struct RoundLog<C> {
    readers: HashMap<C, Vec<usize>>,
    writers: HashMap<C, Vec<usize>>,
    order: Vec<(usize, Access, C)>,
    reads: u64,
    writes: u64,
}

impl<C: Copy + Eq + Ord + Hash> RoundLog<C> {
    /// Empty log.
    pub fn new() -> Self {
        RoundLog {
            readers: HashMap::new(),
            writers: HashMap::new(),
            order: Vec::new(),
            reads: 0,
            writes: 0,
        }
    }

    /// Whether any access was recorded this round.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Total reads recorded this round.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total writes recorded this round.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Record a read of `cell` by `pid`.
    pub fn read(&mut self, pid: usize, cell: C) {
        self.reads += 1;
        push_pid(self.readers.entry(cell).or_default(), pid);
        self.order.push((pid, Access::Read, cell));
    }

    /// Record a write of `cell` by `pid`.
    pub fn write(&mut self, pid: usize, cell: C) {
        self.writes += 1;
        push_pid(self.writers.entry(cell).or_default(), pid);
        self.order.push((pid, Access::Write, cell));
    }

    /// Largest number of distinct processors reading any one cell.
    pub fn max_readers(&self) -> usize {
        self.readers.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Largest number of distinct processors writing any one cell.
    pub fn max_writers(&self) -> usize {
        self.writers.values().map(Vec::len).max().unwrap_or(0)
    }

    /// Check the round against `model`, reporting every conflicting pair of
    /// every conflicting cell in deterministic (cell-sorted) order.
    pub fn check(&self, model: Model) -> Vec<Conflict<C>> {
        let mut out = Vec::new();
        if model == Model::Erew {
            let mut cells: Vec<&C> = self.readers.keys().collect();
            cells.sort();
            for &cell in cells {
                let pids = &self.readers[&cell];
                if pids.len() > 1 {
                    out.push(Conflict {
                        cell,
                        kind: ConflictKind::ConcurrentRead,
                        pairs: all_pairs(pids),
                    });
                }
            }
        }
        if model != Model::Crcw {
            let mut cells: Vec<&C> = self.writers.keys().collect();
            cells.sort();
            for &cell in cells {
                let wpids = &self.writers[&cell];
                if wpids.len() > 1 {
                    out.push(Conflict {
                        cell,
                        kind: ConflictKind::ConcurrentWrite,
                        pairs: all_pairs(wpids),
                    });
                }
                if let Some(rpids) = self.readers.get(&cell) {
                    let mut pairs = Vec::new();
                    for &r in rpids {
                        for &w in wpids {
                            if r != w {
                                pairs.push((r, w));
                            }
                        }
                    }
                    if !pairs.is_empty() {
                        pairs.sort_unstable();
                        out.push(Conflict {
                            cell,
                            kind: ConflictKind::ReadWrite,
                            pairs,
                        });
                    }
                }
            }
        }
        out.sort_by_key(|a| (a.cell, a.kind));
        out
    }

    /// The ordered access trace of `cell` this round — the "cell trace" part
    /// of a minimal repro.
    pub fn trace(&self, cell: C) -> Vec<(usize, Access)> {
        self.order
            .iter()
            .filter(|&&(_, _, c)| c == cell)
            .map(|&(pid, a, _)| (pid, a))
            .collect()
    }

    /// Clear the log for the next round.
    pub fn clear(&mut self) {
        self.readers.clear();
        self.writers.clear();
        self.order.clear();
        self.reads = 0;
        self.writes = 0;
    }
}

impl<C: Copy + Eq + Ord + Hash> Default for RoundLog<C> {
    fn default() -> Self {
        Self::new()
    }
}

/// Insert `pid` into a small sorted distinct-pid vector (a processor
/// touching one cell several times in a round is one participant).
fn push_pid(pids: &mut Vec<usize>, pid: usize) {
    if let Err(pos) = pids.binary_search(&pid) {
        pids.insert(pos, pid);
    }
}

/// All unordered pairs of a sorted distinct pid set.
fn all_pairs(pids: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::with_capacity(pids.len() * (pids.len() - 1) / 2);
    for (i, &a) in pids.iter().enumerate() {
        for &b in &pids[i + 1..] {
            out.push((a, b));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_every_pair_not_just_one() {
        let mut log = RoundLog::new();
        log.read(0, 7usize);
        log.read(1, 7);
        log.read(2, 7);
        let conflicts = log.check(Model::Erew);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn read_write_masking_is_gone() {
        // The historical bug: readers {1, 2}, writer {2}. A last-pid-wins
        // map records reader = 2 == writer and misses pid 1's conflict.
        let mut log = RoundLog::new();
        log.read(1, 3usize);
        log.read(2, 3);
        log.write(2, 3);
        let conflicts = log.check(Model::Crew);
        assert_eq!(conflicts.len(), 1);
        assert_eq!(conflicts[0].kind, ConflictKind::ReadWrite);
        assert_eq!(conflicts[0].pairs, vec![(1, 2)]);
    }

    #[test]
    fn same_pid_read_write_is_legal() {
        let mut log = RoundLog::new();
        log.read(4, 0usize);
        log.write(4, 0);
        assert!(log.check(Model::Erew).is_empty());
    }

    #[test]
    fn duplicate_accesses_by_one_pid_do_not_conflict() {
        let mut log = RoundLog::new();
        log.read(0, 5usize);
        log.read(0, 5);
        assert!(log.check(Model::Erew).is_empty());
        assert_eq!(log.trace(5).len(), 2);
    }

    #[test]
    fn crcw_allows_everything() {
        let mut log = RoundLog::new();
        log.write(0, 1usize);
        log.write(1, 1);
        log.read(2, 1);
        assert!(log.check(Model::Crcw).is_empty());
        assert_eq!(log.check(Model::Crew).len(), 2); // CW + RW
    }
}
