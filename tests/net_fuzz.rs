//! The protocol-fuzz gate (registered under fc-net in
//! `crates/net/Cargo.toml`): deterministic byte surgery over valid
//! frames, in the style of `fc_store::fault`.
//!
//! * **Offline sweep** — ≥100k seeded mutants pushed through both
//!   decoders. Contract per mutant: a typed error, or a decoded value
//!   whose canonical re-encoding is byte-identical to the accepted
//!   prefix. Never a panic, never a hang (decoding is a pure function
//!   over a bounded buffer), never a silent reinterpretation.
//! * **Live storm** — the same mutants thrown at a real `NetServer` over
//!   TCP sockets, interleaved with valid queries that must stay
//!   oracle-equal; the server must survive, count protocol errors, and
//!   still drain clean afterwards.
//!
//! Every failure is a one-number repro: the seed prints alongside the
//! surgery list that produced the mutant.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::{CatalogTree, NodeId};
use fc_net::fuzz::Mutator;
use fc_net::proto::{self, Request, Response, WireAnswer, DEFAULT_MAX_FRAME_LEN};
use fc_net::{ClientConfig, ErrorCode, NetClient, NetConfig, NetServer, WireError};
use fc_serve::ServeConfig;
use fc_shard::{ShardCluster, ShardConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Canonical frames the mutator operates on: every request and response
/// shape, so surgery explores every decode path.
fn corpus() -> Vec<Vec<u8>> {
    let mut out = vec![
        proto::encode_request::<i64>(&Request::Query {
            leaf: 11,
            key: -777,
            deadline_ms: 1_500,
        }),
        proto::encode_request::<i64>(&Request::Query {
            leaf: u32::MAX,
            key: i64::MIN,
            deadline_ms: u32::MAX,
        }),
        proto::encode_request::<i64>(&Request::Health),
        proto::encode_request::<i64>(&Request::Shutdown),
        proto::encode_response::<i64>(&Response::Answer(WireAnswer {
            table_version: 4,
            entries: vec![(0, Some(1)), (2, None), (5, Some(i64::MAX))],
        })),
        proto::encode_response::<i64>(&Response::Answer(WireAnswer {
            table_version: 0,
            entries: vec![],
        })),
        proto::encode_response::<i64>(&Response::Health("q 3\nshed 0.1\n".to_owned())),
        proto::encode_response::<i64>(&Response::Error(WireError {
            code: ErrorCode::Overloaded,
            detail: "queue full".to_owned(),
        })),
        proto::encode_response::<i64>(&Response::Bye),
    ];
    // One big answer so length-field surgery has room to play.
    out.push(proto::encode_response::<i64>(&Response::Answer(
        WireAnswer {
            table_version: 77,
            entries: (0..200)
                .map(|i| (i as u32, Some(i as i64 * 13 - 900)))
                .collect(),
        },
    )));
    out
}

/// The per-mutant contract: decoding must be total (it returned), and an
/// accepted prefix must be the canonical encoding of the decoded value —
/// the only way surgery can pass the CRC is by reproducing valid bytes,
/// and then the decode must mean exactly what those bytes encode.
fn check_mutant(seed: u64, surgeries: &str, mutant: &[u8]) {
    if let Ok((req, used)) = proto::decode_request::<i64>(mutant, DEFAULT_MAX_FRAME_LEN) {
        let canon = proto::encode_request(&req);
        assert_eq!(
            &mutant[..used],
            canon.as_slice(),
            "seed {seed} [{surgeries}]: accepted request prefix is not the \
             canonical encoding of its decoded value"
        );
    }
    if let Ok((resp, used)) = proto::decode_response::<i64>(mutant, DEFAULT_MAX_FRAME_LEN) {
        let canon = proto::encode_response(&resp);
        assert_eq!(
            &mutant[..used],
            canon.as_slice(),
            "seed {seed} [{surgeries}]: accepted response prefix is not the \
             canonical encoding of its decoded value"
        );
    }
}

/// The offline gate: ≥100k seeded mutants, both decoders, no panic, no
/// silent reinterpretation. Any failure names its seed.
#[test]
fn fuzz_gate_100k_mutants_decode_safely() {
    const SEEDS: u64 = 120_000;
    let frames = corpus();
    let mut mutants = 0u64;
    for seed in 0..SEEDS {
        let frame = &frames[(seed as usize) % frames.len()];
        let (mutant, surgeries) = Mutator::new(seed).mutate(frame);
        check_mutant(seed, &format!("{surgeries:?}"), &mutant);
        mutants += 1;
    }
    assert!(
        mutants >= 100_000,
        "gate requires ≥100k mutants, ran {mutants}"
    );
}

// ---------------------------------------------------------------------
// Live storm against a real server.
// ---------------------------------------------------------------------

fn small_cluster(tree: &CatalogTree<i64>) -> Arc<ShardCluster<i64>> {
    Arc::new(ShardCluster::start(
        tree,
        fc_coop::ParamMode::Auto,
        ShardConfig {
            shards: 2,
            replicas: 1,
            serve: ServeConfig {
                workers: 2,
                default_deadline: Duration::from_secs(5),
                audit_interval: Duration::from_millis(500),
                processors: 1 << 8,
                ..ServeConfig::default()
            },
            batch_threads: 1,
            default_deadline: Duration::from_secs(10),
            ..ShardConfig::default()
        },
    ))
}

fn oracle(tree: &CatalogTree<i64>, leaf: NodeId, y: i64) -> Vec<(u32, Option<i64>)> {
    tree.path_from_root(leaf)
        .iter()
        .map(|&node| {
            let cat = tree.catalog(node);
            (node.0, cat.get(cat.partition_point(|k| *k < y)).copied())
        })
        .collect()
}

fn assert_oracle_equal(tree: &CatalogTree<i64>, client: &mut NetClient, leaf: NodeId, y: i64) {
    let ans = client
        .query(leaf.0, y, Some(Duration::from_secs(5)))
        .unwrap_or_else(|e| panic!("valid query failed mid-storm: {e}"));
    assert_eq!(
        ans.entries,
        oracle(tree, leaf, y),
        "wire answer diverged from the sequential oracle — a silently \
         wrong answer crossed the network boundary"
    );
}

/// Throw 400 seeded mutants at live sockets. The server must reply (or
/// close) within a bounded time for every one, keep answering valid
/// queries oracle-equally throughout, count the protocol errors, and
/// drain with zero forced connections afterwards.
#[test]
fn garbage_storm_on_live_sockets_then_oracle_equal() {
    let mut rng = SmallRng::seed_from_u64(0xF0_11E7);
    let tree = gen::balanced_binary(4, 600, SizeDist::Uniform, &mut rng);
    let cluster = small_cluster(&tree);
    let server = NetServer::start(
        Arc::clone(&cluster),
        "127.0.0.1:0",
        NetConfig {
            max_conns: 64,
            idle_timeout: Duration::from_millis(500),
            drain_timeout: Duration::from_secs(5),
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let leaves = tree.leaves();
    // Exclude the canonical Shutdown frame: surgery can no-op (e.g. a
    // full-length truncate), and a byte-identical Shutdown would — by
    // design — drain the server mid-storm.
    let frames: Vec<Vec<u8>> = corpus()
        .into_iter()
        .filter(|f| f.get(8) != Some(&proto::T_SHUTDOWN))
        .collect();
    let ccfg = ClientConfig {
        read_timeout: Duration::from_secs(5),
        ..ClientConfig::default()
    };

    for seed in 0..400u64 {
        let frame = &frames[(seed as usize) % frames.len()];
        let (mutant, _) = Mutator::new(0xBAD0_0000 + seed).mutate(frame);
        let mut sock = TcpStream::connect(addr).expect("connect");
        sock.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
        sock.set_write_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        // The server may close mid-write on garbage; that is its right.
        let _ = sock.write_all(&mutant);
        let _ = sock.flush();
        // Drain whatever reply comes (typed error frame or EOF); the
        // read timeout bounds a hang — a wedged server fails here.
        let _ = proto::read_frame(&mut sock, DEFAULT_MAX_FRAME_LEN);
        drop(sock);
        if seed % 40 == 0 {
            let mut client = NetClient::connect(addr, ccfg.clone()).expect("client connect");
            let leaf = leaves[(seed as usize / 40) % leaves.len()];
            assert_oracle_equal(&tree, &mut client, leaf, rng.gen_range(-200_000..200_000));
        }
    }

    // The storm is over: a fresh client still gets oracle-equal answers,
    // and the garbage was counted as typed protocol errors, not crashes.
    let mut client = NetClient::connect(addr, ccfg).expect("post-storm connect");
    for leaf in leaves.iter().take(8) {
        assert_oracle_equal(&tree, &mut client, *leaf, rng.gen_range(-200_000..200_000));
    }
    let stats = server.stats();
    assert!(
        stats.proto_errors > 0,
        "storm must have registered protocol errors, got {stats:?}"
    );
    assert!(
        stats.answers >= 18,
        "valid queries must have answered: {stats:?}"
    );
    drop(client);
    let report = server.drain();
    assert_eq!(
        report.forced, 0,
        "drain after the storm must not force-close connections: {report:?}"
    );
}

/// The `Health` frame works over a live socket and reports what the
/// operator needs: per-shard replica lines (queue depth, breaker state,
/// heat) plus the wire-level counters, updating as traffic flows.
#[test]
fn health_report_over_the_wire_names_every_shard() {
    let mut rng = SmallRng::seed_from_u64(0x4EA17);
    let tree = gen::balanced_binary(3, 300, SizeDist::Uniform, &mut rng);
    let cluster = small_cluster(&tree);
    let shards = cluster.health().len();
    let server =
        NetServer::start(Arc::clone(&cluster), "127.0.0.1:0", NetConfig::default()).expect("bind");
    let mut client =
        NetClient::connect(server.local_addr(), ClientConfig::default()).expect("connect");
    for leaf in tree.leaves().iter().take(5) {
        assert_oracle_equal(&tree, &mut client, *leaf, rng.gen_range(-200_000..200_000));
    }
    let text = client.health::<i64>().expect("health round trip");
    for shard in 0..shards {
        assert!(
            text.contains(&format!("shard {shard}")),
            "health report must name shard {shard}:\n{text}"
        );
    }
    for needle in [
        "queue",
        "shed",
        "breaker",
        "heat",
        "answers",
        "incr_applies",
        "fallback_rebuilds",
        "tombstone_ratio",
    ] {
        assert!(
            text.contains(needle),
            "health report missing `{needle}`:\n{text}"
        );
    }
    drop(client);
    let report = server.drain();
    assert_eq!(report.forced, 0, "clean drain after health: {report:?}");
}

/// A wire `Shutdown` frame drains the server exactly like SIGTERM: the
/// requester gets `Bye`, an in-flight peer's next query gets a typed
/// `ShuttingDown`, and the drain completes without forcing connections.
#[test]
fn wire_shutdown_drains_with_typed_refusals() {
    let mut rng = SmallRng::seed_from_u64(0xD1A10);
    let tree = gen::balanced_binary(3, 200, SizeDist::Uniform, &mut rng);
    let cluster = small_cluster(&tree);
    let server = NetServer::start(
        Arc::clone(&cluster),
        "127.0.0.1:0",
        NetConfig {
            drain_grace: Duration::from_secs(2),
            drain_timeout: Duration::from_secs(5),
            ..NetConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();
    let leaves = tree.leaves();
    let ccfg = ClientConfig::default();

    // Peer A connects and proves the server answers before the drain.
    let mut peer = NetClient::connect(addr, ccfg.clone()).expect("peer connect");
    assert_oracle_equal(&tree, &mut peer, leaves[0], 42);

    // Peer B requests shutdown and gets the Bye ack.
    let mut admin = NetClient::connect(addr, ccfg).expect("admin connect");
    admin.shutdown_server::<i64>().expect("shutdown ack");
    assert!(
        server.is_draining(),
        "wire Shutdown must set the drain flag"
    );

    // Peer A is still connected (grace window): its next query must be
    // refused with a *typed* ShuttingDown, not a hang or a slam.
    match peer.query(leaves[0].0, 42i64, Some(Duration::from_secs(2))) {
        Err(fc_net::NetError::Remote(e)) => {
            assert_eq!(e.code, ErrorCode::ShuttingDown, "got {e:?}")
        }
        other => panic!("query during drain gave {other:?}"),
    }
    drop(peer);
    drop(admin);
    let report = server.drain();
    assert_eq!(
        report.forced, 0,
        "graceful drain forced connections: {report:?}"
    );
    assert!(
        report.took < Duration::from_secs(5),
        "drain exceeded its bound: {report:?}"
    );
}
