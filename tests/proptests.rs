//! Property-based tests (proptest) on the core invariants:
//!
//! * fractional cascading Properties 1–3 on arbitrary trees and catalogs;
//! * cooperative search == sequential search == naive search, for
//!   arbitrary instances, queries, and processor counts;
//! * Lemma 1 disjointness on the bidirectional structure;
//! * point location == brute force on arbitrary monotone subdivisions;
//! * retrieval == brute-force report sets.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::invariants;
use fc_catalog::search::{search_path_fc, search_path_naive};
use fc_catalog::CascadedTree;
use fc_coop::explicit::coop_search_explicit;
use fc_coop::skeleton::check_lemma1;
use fc_coop::{CoopStructure, ParamMode};
use fc_geom::cooploc::locate_coop;
use fc_geom::septree::{locate_sequential, SeparatorTree};
use fc_geom::subdivision::{MonotoneSubdivision, SubdivisionParams};
use fc_pram::primitives::{coop_lower_bound, lower_bound, merge_par, merge_seq, prefix_sum_par, prefix_sum_seq};
use fc_pram::{Model, Pram};
use fc_retrieval::segint::{HQuery, SegmentIntersection, VSegment};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cooperative p-ary search equals binary search for arbitrary sorted
    /// inputs, probes, and processor counts.
    #[test]
    fn prop_coop_lower_bound(mut v in prop::collection::vec(-1000i64..1000, 0..400),
                             y in -1100i64..1100,
                             p in 1usize..600) {
        v.sort_unstable();
        let mut pram = Pram::new(p, Model::Crew);
        prop_assert_eq!(coop_lower_bound(&v, &y, &mut pram), lower_bound(&v, &y));
    }

    /// Parallel merge equals sequential merge.
    #[test]
    fn prop_merge(mut a in prop::collection::vec(-500i64..500, 0..300),
                  mut b in prop::collection::vec(-500i64..500, 0..300)) {
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(merge_par(&a, &b), merge_seq(&a, &b));
    }

    /// Parallel prefix sums equal sequential prefix sums.
    #[test]
    fn prop_prefix(v in prop::collection::vec(0u64..1000, 0..5000)) {
        prop_assert_eq!(prefix_sum_par(&v), prefix_sum_seq(&v));
    }

    /// Properties 1–3 hold on randomly shaped/sized cascaded trees, for
    /// both builds.
    #[test]
    fn prop_cascade_invariants(seed in 0u64..5000, height in 0u32..7, total in 1usize..3000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(height, total, SizeDist::Uniform, &mut rng);
        let down = CascadedTree::build(tree.clone(), 4);
        prop_assert!(invariants::validate(&invariants::check_all(&down)).is_ok());
        let bidir = CascadedTree::build_bidir(tree, 4);
        prop_assert!(invariants::validate(&invariants::check_all(&bidir)).is_ok());
    }

    /// Cooperative explicit search agrees with the naive baseline on
    /// arbitrary instances, queries, and processor counts.
    #[test]
    fn prop_coop_search_agrees(seed in 0u64..5000,
                               total in 64usize..4000,
                               p_exp in 0u32..34,
                               y in -100_000i64..100_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(7, total, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let leaf = gen::random_leaf(st.tree(), &mut rng);
        let path = st.tree().path_from_root(leaf);
        let naive = search_path_naive(st.tree(), &path, y, None);
        let mut pram = Pram::new(1usize << p_exp, Model::Crew);
        let coop = coop_search_explicit(&st, &path, y, &mut pram);
        prop_assert_eq!(coop.finds, naive.results);
        prop_assert_eq!(coop.stats.fallbacks, 0);
    }

    /// The sequential FC search agrees with naive for arbitrary skew.
    #[test]
    fn prop_fc_search_agrees(seed in 0u64..5000, heavy in 0.0f64..0.95) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(6, 2000, SizeDist::SingleHeavy(heavy), &mut rng);
        let fc = CascadedTree::build_bidir(tree.clone(), 4);
        let leaf = gen::random_leaf(&tree, &mut rng);
        let path = tree.path_from_root(leaf);
        for y in [-1i64, 0, 16_000, 31_999, 32_000] {
            prop_assert_eq!(
                search_path_fc(&fc, &path, y, None),
                search_path_naive(&tree, &path, y, None)
            );
        }
    }

    /// Lemma 1: skeleton keys are distinct on the bidirectional structure,
    /// for arbitrary instances.
    #[test]
    fn prop_lemma1_disjoint(seed in 0u64..5000, total in 500usize..8000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(8, total, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        for sub in st.substructures() {
            let (violations, _) = check_lemma1(sub);
            prop_assert_eq!(violations, 0);
        }
    }

    /// Point location: both locators equal brute force on arbitrary
    /// subdivisions and queries.
    #[test]
    fn prop_point_location(seed in 0u64..5000,
                           regions_exp in 2u32..8,
                           strips in 2usize..24,
                           stick in 0.0f64..0.9,
                           qx in -5.0f64..1030.0,
                           qy in -5.0f64..80.0) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sub = MonotoneSubdivision::generate(SubdivisionParams {
            regions: 1 << regions_exp,
            strips,
            stick,
            detach: 0.4,
        }, &mut rng);
        let t = SeparatorTree::build(sub, ParamMode::Auto);
        let want = t.sub.locate_brute(qx, qy);
        let (seq, _) = locate_sequential(&t, qx, qy, None);
        prop_assert_eq!(seq, want);
        let mut pram = Pram::new(1 << 16, Model::Crew);
        let (coop, _) = locate_coop(&t, qx, qy, &mut pram);
        prop_assert_eq!(coop, want);
    }

    /// Segment intersection reports exactly the brute-force set for
    /// arbitrary segments and queries.
    #[test]
    fn prop_segment_intersection(seed in 0u64..5000,
                                 n in 1usize..200,
                                 y in -50i64..1050,
                                 x_lo in -50i64..1050,
                                 width in 0i64..1100) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let xs = gen::distinct_sorted_keys(n, 100_000, &mut rng);
        let segs: Vec<VSegment> = xs.into_iter().map(|x| {
            let a = rand::Rng::gen_range(&mut rng, 0..1000);
            let b = rand::Rng::gen_range(&mut rng, 0..1000);
            VSegment { x, y_lo: a.min(b), y_hi: a.max(b) }
        }).collect();
        let si = SegmentIntersection::build(segs, ParamMode::Auto);
        let q = HQuery { y, x_lo, x_hi: x_lo + width };
        let mut pram = Pram::new(64, Model::Crew);
        let list = si.query_coop(q, true, &mut pram);
        prop_assert_eq!(si.collect_ids(&list), si.query_brute(q));
    }

    /// The pipelined (ACG) build converges to the direct construction on
    /// arbitrary instances.
    #[test]
    fn prop_pipelined_build(seed in 0u64..5000, height in 0u32..7, total in 1usize..2500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(height, total, SizeDist::Uniform, &mut rng);
        let direct = CascadedTree::build(tree.clone(), 4);
        let (piped, stats) = fc_catalog::pipeline::build_pipelined(tree, 4, None);
        for id in direct.tree().ids() {
            prop_assert_eq!(direct.keys(id), piped.keys(id));
        }
        // Depth bound: 4 * (height + log total + slack).
        let lg = (usize::BITS - total.max(2).leading_zeros()) as u64;
        prop_assert!(stats.rounds <= 4 * (height as u64 + lg + 8));
    }

    /// List ranking and Euler depths match their sequential definitions on
    /// random forests/trees.
    #[test]
    fn prop_list_rank(perm_seed in 0u64..5000, n in 1usize..300) {
        use fc_pram::listrank::list_rank;
        let mut rng = SmallRng::seed_from_u64(perm_seed);
        // Random forest of lists: each element points to a higher index or
        // itself (guarantees termination).
        let next: Vec<usize> = (0..n)
            .map(|i| if i + 1 == n || rand::Rng::gen_bool(&mut rng, 0.2) { i } else { rand::Rng::gen_range(&mut rng, i + 1..n) })
            .collect();
        let mut pram = Pram::new(n, Model::Erew);
        let ranks = list_rank(&next, &mut pram);
        for (i, &rank) in ranks.iter().enumerate() {
            // Sequential reference.
            let (mut cur, mut d) = (i, 0u64);
            while next[cur] != cur {
                cur = next[cur];
                d += 1;
            }
            prop_assert_eq!(rank, d);
        }
    }

    /// Euler-tour depths equal stored depths on random catalog trees.
    #[test]
    fn prop_euler_depths(seed in 0u64..5000, height in 0u32..8) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(height, 100, SizeDist::Uniform, &mut rng);
        let mut pram = Pram::new(4 * tree.len(), Model::Erew);
        let depths = tree.depths_parallel(&mut pram);
        for id in tree.ids() {
            prop_assert_eq!(depths[id.idx()], tree.depth(id));
        }
    }

    /// The generic d-dimensional range tree matches brute force for
    /// d in 1..=3 with arbitrary boxes.
    #[test]
    fn prop_range_tree_d(seed in 0u64..5000, d in 1usize..4, n in 1usize..150) {
        use fc_retrieval::ranged::{brute, random_points_d, RangeTreeD};
        let mut rng = SmallRng::seed_from_u64(seed);
        let pts = random_points_d(n, d, 5000, &mut rng);
        let t = RangeTreeD::build(&pts);
        for _ in 0..3 {
            let bounds: Vec<(i64, i64)> = (0..d).map(|_| {
                let a = rand::Rng::gen_range(&mut rng, -5i64..5005);
                let b = rand::Rng::gen_range(&mut rng, -5i64..5005);
                (a.min(b), a.max(b))
            }).collect();
            let mut pram = Pram::new(256, Model::Crew);
            prop_assert_eq!(t.query(&bounds, &mut pram), brute(&pts, &bounds));
        }
    }

    /// Spatial point location equals brute force for arbitrary complexes.
    #[test]
    fn prop_spatial_location(seed in 0u64..5000,
                             cells_exp in 1u32..6,
                             coincide in 0.0f64..0.9,
                             qz in -2.0f64..80.0) {
        use fc_geom::spatial::{locate_spatial_coop, SpatialComplex, SpatialLocator, SpatialParams};
        use fc_geom::subdivision::SubdivisionParams;
        let mut rng = SmallRng::seed_from_u64(seed);
        let complex = SpatialComplex::generate(SpatialParams {
            cells: 1 << cells_exp,
            footprint: SubdivisionParams { regions: 16, strips: 6, stick: 0.4, detach: 0.4 },
            coincide,
        }, &mut rng);
        let loc = SpatialLocator::build(complex, ParamMode::Auto);
        let (x, y, _) = loc.complex.random_query(&mut rng);
        let want = loc.complex.locate_brute(x, y, qz);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let (got, _) = locate_spatial_coop(&loc, x, y, qz, &mut pram);
        prop_assert_eq!(got, want);
    }

    /// Dynamic searches stay exact under arbitrary update sequences.
    #[test]
    fn prop_dynamic_updates(seed in 0u64..5000, updates in 0usize..400) {
        use fc_catalog::NodeId;
        use fc_coop::dynamic::DynamicCoop;
        let mut rng = SmallRng::seed_from_u64(seed);
        let tree = gen::balanced_binary(5, 600, SizeDist::Uniform, &mut rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(256, Model::Crew);
        let nodes = dy.structure().tree().len() as u32;
        for _ in 0..updates {
            let node = NodeId(rand::Rng::gen_range(&mut rng, 0..nodes));
            let key = rand::Rng::gen_range(&mut rng, 0..10_000i64);
            if rand::Rng::gen_bool(&mut rng, 0.5) {
                dy.insert(node, key, &mut pram);
            } else {
                dy.remove(node, key, &mut pram);
            }
        }
        let leaf = gen::random_leaf(dy.structure().tree(), &mut rng);
        let path = dy.structure().tree().path_from_root(leaf);
        let y = rand::Rng::gen_range(&mut rng, -5..10_005i64);
        let got = dy.search(&path, y, &mut pram);
        let want: Vec<Option<i64>> = path.iter().map(|&node| {
            dy.logical_catalog(node).into_iter().find(|&k| k >= y)
        }).collect();
        prop_assert_eq!(got, want);
    }
}
