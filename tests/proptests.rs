//! Property-style randomized tests on the core invariants, driven by
//! seeded `SmallRng` loops (deterministic, registry-free):
//!
//! * fractional cascading Properties 1–3 on arbitrary trees and catalogs;
//! * cooperative search == sequential search == naive search, for
//!   arbitrary instances, queries, and processor counts;
//! * Lemma 1 disjointness on the bidirectional structure;
//! * point location == brute force on arbitrary monotone subdivisions;
//! * retrieval == brute-force report sets.
//!
//! Each test draws `CASES` independent instances from a fixed per-test
//! seed, so any failure is reproducible from the seed arithmetic alone.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::invariants;
use fc_catalog::search::{search_path_fc, search_path_naive};
use fc_catalog::CascadedTree;
use fc_coop::explicit::coop_search_explicit;
use fc_coop::skeleton::check_lemma1;
use fc_coop::{CoopStructure, ParamMode};
use fc_geom::cooploc::locate_coop;
use fc_geom::septree::{locate_sequential, SeparatorTree};
use fc_geom::subdivision::{MonotoneSubdivision, SubdivisionParams};
use fc_pram::primitives::{
    coop_lower_bound, lower_bound, merge_par, merge_seq, prefix_sum_par, prefix_sum_seq,
};
use fc_pram::{Model, Pram};
use fc_retrieval::segint::{HQuery, SegmentIntersection, VSegment};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 48;

/// Run `body` for `CASES` deterministic sub-seeds.
fn cases(test_seed: u64, body: impl Fn(&mut SmallRng)) {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(test_seed * 10_000 + case);
        body(&mut rng);
    }
}

/// Cooperative p-ary search equals binary search for arbitrary sorted
/// inputs, probes, and processor counts.
#[test]
fn prop_coop_lower_bound() {
    cases(1, |rng| {
        let n = rng.gen_range(0usize..400);
        let mut v: Vec<i64> = (0..n).map(|_| rng.gen_range(-1000i64..1000)).collect();
        v.sort_unstable();
        let y = rng.gen_range(-1100i64..1100);
        let p = rng.gen_range(1usize..600);
        let mut pram = Pram::new(p, Model::Crew);
        assert_eq!(coop_lower_bound(&v, &y, &mut pram), lower_bound(&v, &y));
    });
}

/// Parallel merge equals sequential merge.
#[test]
fn prop_merge() {
    cases(2, |rng| {
        let mut a: Vec<i64> = (0..rng.gen_range(0usize..300))
            .map(|_| rng.gen_range(-500i64..500))
            .collect();
        let mut b: Vec<i64> = (0..rng.gen_range(0usize..300))
            .map(|_| rng.gen_range(-500i64..500))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(merge_par(&a, &b), merge_seq(&a, &b));
    });
}

/// Parallel prefix sums equal sequential prefix sums.
#[test]
fn prop_prefix() {
    cases(3, |rng| {
        let v: Vec<u64> = (0..rng.gen_range(0usize..5000))
            .map(|_| rng.gen_range(0u64..1000))
            .collect();
        assert_eq!(prefix_sum_par(&v), prefix_sum_seq(&v));
    });
}

/// Properties 1–3 hold on randomly shaped/sized cascaded trees, for
/// both builds.
#[test]
fn prop_cascade_invariants() {
    cases(4, |rng| {
        let height = rng.gen_range(0u32..7);
        let total = rng.gen_range(1usize..3000);
        let tree = gen::balanced_binary(height, total, SizeDist::Uniform, rng);
        let down = CascadedTree::build(tree.clone(), 4);
        assert!(invariants::validate(&invariants::check_all(&down)).is_ok());
        let bidir = CascadedTree::build_bidir(tree, 4);
        assert!(invariants::validate(&invariants::check_all(&bidir)).is_ok());
    });
}

/// Cooperative explicit search agrees with the naive baseline on
/// arbitrary instances, queries, and processor counts.
#[test]
fn prop_coop_search_agrees() {
    cases(5, |rng| {
        let total = rng.gen_range(64usize..4000);
        let p_exp = rng.gen_range(0u32..34);
        let y = rng.gen_range(-100_000i64..100_000);
        let tree = gen::balanced_binary(7, total, SizeDist::Uniform, rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let leaf = gen::random_leaf(st.tree(), rng);
        let path = st.tree().path_from_root(leaf);
        let naive = search_path_naive(st.tree(), &path, y, None);
        let mut pram = Pram::new(1usize << p_exp, Model::Crew);
        let coop = coop_search_explicit(&st, &path, y, &mut pram);
        assert_eq!(coop.finds, naive.results);
        assert_eq!(coop.stats.fallbacks, 0);
    });
}

/// The sequential FC search agrees with naive for arbitrary skew.
#[test]
fn prop_fc_search_agrees() {
    cases(6, |rng| {
        let heavy = rng.gen_range(0.0f64..0.95);
        let tree = gen::balanced_binary(6, 2000, SizeDist::SingleHeavy(heavy), rng);
        let fc = CascadedTree::build_bidir(tree.clone(), 4);
        let leaf = gen::random_leaf(&tree, rng);
        let path = tree.path_from_root(leaf);
        for y in [-1i64, 0, 16_000, 31_999, 32_000] {
            assert_eq!(
                search_path_fc(&fc, &path, y, None),
                search_path_naive(&tree, &path, y, None)
            );
        }
    });
}

/// Lemma 1: skeleton keys are distinct on the bidirectional structure,
/// for arbitrary instances.
#[test]
fn prop_lemma1_disjoint() {
    cases(7, |rng| {
        let total = rng.gen_range(500usize..8000);
        let tree = gen::balanced_binary(8, total, SizeDist::Uniform, rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        for sub in st.substructures() {
            let (violations, _) = check_lemma1(sub);
            assert_eq!(violations, 0);
        }
    });
}

/// Point location: both locators equal brute force on arbitrary
/// subdivisions and queries.
#[test]
fn prop_point_location() {
    cases(8, |rng| {
        let regions_exp = rng.gen_range(2u32..8);
        let strips = rng.gen_range(2usize..24);
        let stick = rng.gen_range(0.0f64..0.9);
        let qx = rng.gen_range(-5.0f64..1030.0);
        let qy = rng.gen_range(-5.0f64..80.0);
        let sub = MonotoneSubdivision::generate(
            SubdivisionParams {
                regions: 1 << regions_exp,
                strips,
                stick,
                detach: 0.4,
            },
            rng,
        );
        let t = SeparatorTree::build(sub, ParamMode::Auto);
        let want = t.sub.locate_brute(qx, qy);
        let (seq, _) = locate_sequential(&t, qx, qy, None);
        assert_eq!(seq, want);
        let mut pram = Pram::new(1 << 16, Model::Crew);
        let (coop, _) = locate_coop(&t, qx, qy, &mut pram);
        assert_eq!(coop, want);
    });
}

/// Segment intersection reports exactly the brute-force set for
/// arbitrary segments and queries.
#[test]
fn prop_segment_intersection() {
    cases(9, |rng| {
        let n = rng.gen_range(1usize..200);
        let y = rng.gen_range(-50i64..1050);
        let x_lo = rng.gen_range(-50i64..1050);
        let width = rng.gen_range(0i64..1100);
        let xs = gen::distinct_sorted_keys(n, 100_000, rng);
        let segs: Vec<VSegment> = xs
            .into_iter()
            .map(|x| {
                let a = rng.gen_range(0..1000);
                let b = rng.gen_range(0..1000);
                VSegment {
                    x,
                    y_lo: a.min(b),
                    y_hi: a.max(b),
                }
            })
            .collect();
        let si = SegmentIntersection::build(segs, ParamMode::Auto);
        let q = HQuery {
            y,
            x_lo,
            x_hi: x_lo + width,
        };
        let mut pram = Pram::new(64, Model::Crew);
        let list = si.query_coop(q, true, &mut pram);
        assert_eq!(si.collect_ids(&list), si.query_brute(q));
    });
}

/// The pipelined (ACG) build converges to the direct construction on
/// arbitrary instances.
#[test]
fn prop_pipelined_build() {
    cases(10, |rng| {
        let height = rng.gen_range(0u32..7);
        let total = rng.gen_range(1usize..2500);
        let tree = gen::balanced_binary(height, total, SizeDist::Uniform, rng);
        let direct = CascadedTree::build(tree.clone(), 4);
        let (piped, stats) = fc_catalog::pipeline::build_pipelined(tree, 4, None);
        for id in direct.tree().ids() {
            assert_eq!(direct.keys(id), piped.keys(id));
        }
        // Depth bound: 4 * (height + log total + slack).
        let lg = (usize::BITS - total.max(2).leading_zeros()) as u64;
        assert!(stats.rounds <= 4 * (height as u64 + lg + 8));
    });
}

/// List ranking matches its sequential definition on random forests.
#[test]
fn prop_list_rank() {
    cases(11, |rng| {
        use fc_pram::listrank::list_rank;
        let n = rng.gen_range(1usize..300);
        // Random forest of lists: each element points to a higher index or
        // itself (guarantees termination).
        let next: Vec<usize> = (0..n)
            .map(|i| {
                if i + 1 == n || rng.gen_bool(0.2) {
                    i
                } else {
                    rng.gen_range(i + 1..n)
                }
            })
            .collect();
        let mut pram = Pram::new(n, Model::Erew);
        let ranks = list_rank(&next, &mut pram);
        for (i, &rank) in ranks.iter().enumerate() {
            // Sequential reference.
            let (mut cur, mut d) = (i, 0u64);
            while next[cur] != cur {
                cur = next[cur];
                d += 1;
            }
            assert_eq!(rank, d);
        }
    });
}

/// Euler-tour depths equal stored depths on random catalog trees.
#[test]
fn prop_euler_depths() {
    cases(12, |rng| {
        let height = rng.gen_range(0u32..8);
        let tree = gen::balanced_binary(height, 100, SizeDist::Uniform, rng);
        let mut pram = Pram::new(4 * tree.len(), Model::Erew);
        let depths = tree.depths_parallel(&mut pram);
        for id in tree.ids() {
            assert_eq!(depths[id.idx()], tree.depth(id));
        }
    });
}

/// The generic d-dimensional range tree matches brute force for
/// d in 1..=3 with arbitrary boxes.
#[test]
fn prop_range_tree_d() {
    cases(13, |rng| {
        use fc_retrieval::ranged::{brute, random_points_d, RangeTreeD};
        let d = rng.gen_range(1usize..4);
        let n = rng.gen_range(1usize..150);
        let pts = random_points_d(n, d, 5000, rng);
        let t = RangeTreeD::build(&pts);
        for _ in 0..3 {
            let bounds: Vec<(i64, i64)> = (0..d)
                .map(|_| {
                    let a = rng.gen_range(-5i64..5005);
                    let b = rng.gen_range(-5i64..5005);
                    (a.min(b), a.max(b))
                })
                .collect();
            let mut pram = Pram::new(256, Model::Crew);
            assert_eq!(t.query(&bounds, &mut pram), brute(&pts, &bounds));
        }
    });
}

/// Spatial point location equals brute force for arbitrary complexes.
#[test]
fn prop_spatial_location() {
    cases(14, |rng| {
        use fc_geom::spatial::{
            locate_spatial_coop, SpatialComplex, SpatialLocator, SpatialParams,
        };
        use fc_geom::subdivision::SubdivisionParams;
        let cells_exp = rng.gen_range(1u32..6);
        let coincide = rng.gen_range(0.0f64..0.9);
        let qz = rng.gen_range(-2.0f64..80.0);
        let complex = SpatialComplex::generate(
            SpatialParams {
                cells: 1 << cells_exp,
                footprint: SubdivisionParams {
                    regions: 16,
                    strips: 6,
                    stick: 0.4,
                    detach: 0.4,
                },
                coincide,
            },
            rng,
        );
        let loc = SpatialLocator::build(complex, ParamMode::Auto);
        let (x, y, _) = loc.complex.random_query(rng);
        let want = loc.complex.locate_brute(x, y, qz);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let (got, _) = locate_spatial_coop(&loc, x, y, qz, &mut pram);
        assert_eq!(got, want);
    });
}

/// Dynamic searches stay exact under arbitrary update sequences.
#[test]
fn prop_dynamic_updates() {
    cases(15, |rng| {
        use fc_catalog::NodeId;
        use fc_coop::dynamic::DynamicCoop;
        let updates = rng.gen_range(0usize..400);
        let tree = gen::balanced_binary(5, 600, SizeDist::Uniform, rng);
        let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.25);
        let mut pram = Pram::new(256, Model::Crew);
        let nodes = dy.structure().tree().len() as u32;
        for _ in 0..updates {
            let node = NodeId(rng.gen_range(0..nodes));
            let key = rng.gen_range(0..10_000i64);
            if rng.gen_bool(0.5) {
                dy.insert(node, key, &mut pram);
            } else {
                dy.remove(node, key, &mut pram);
            }
        }
        let leaf = gen::random_leaf(dy.structure().tree(), rng);
        let path = dy.structure().tree().path_from_root(leaf);
        let y = rng.gen_range(-5..10_005i64);
        let got = dy.search(&path, y, &mut pram);
        let want: Vec<Option<i64>> = path
            .iter()
            .map(|&node| dy.logical_catalog(node).into_iter().find(|&k| k >= y))
            .collect();
        assert_eq!(got, want);
    });
}

/// Flat-arena cascade vs a nested per-node oracle, across the fc-analyze
/// shape sweep: every node's `native_succ` table and every bridge row must
/// bit-match a definitional recomputation (one binary search per entry),
/// `find_aug` must agree with an audited per-node binary search, and its
/// composition with `native_succ` must equal the direct lower bound in the
/// native catalog — for both the downward and the bidirectional builders.
#[test]
fn prop_flat_arena_matches_nested_oracle_across_shape_sweep() {
    use fc_analyze::replay::TreeShape;
    let shapes = [
        TreeShape {
            height: 4,
            total: 600,
            heavy: None,
            seed: 9001,
        },
        TreeShape {
            height: 6,
            total: 2500,
            heavy: None,
            seed: 9002,
        },
        TreeShape {
            height: 6,
            total: 2500,
            heavy: Some(0.8),
            seed: 9003,
        },
        TreeShape {
            height: 12,
            total: 1 << 16,
            heavy: None,
            seed: 9004,
        },
    ];
    for shape in shapes {
        let tree = shape.gen();
        for bidir in [false, true] {
            let fc = if bidir {
                CascadedTree::build_bidir(tree.clone(), 4)
            } else {
                CascadedTree::build(tree.clone(), 4)
            };
            let t = fc.tree();
            for v in t.ids() {
                let aug = fc.aug(v);
                let native = t.catalog(v);
                // Nested oracle: native_succ recomputed definitionally.
                let oracle_ns: Vec<u32> = aug
                    .keys
                    .iter()
                    .map(|k| native.partition_point(|x| x < k) as u32)
                    .collect();
                assert_eq!(
                    aug.native_succ,
                    &oracle_ns[..],
                    "{} bidir={bidir} node {v:?}: native_succ",
                    shape.label()
                );
                // Every bridge row recomputed definitionally against the
                // child's augmented catalog.
                for (slot, &c) in t.children(v).iter().enumerate() {
                    let ck = fc.keys(c);
                    let oracle_row: Vec<u32> = aug
                        .keys
                        .iter()
                        .map(|k| ck.partition_point(|x| x < k) as u32)
                        .collect();
                    assert_eq!(
                        &aug.bridges[slot],
                        &oracle_row[..],
                        "{} bidir={bidir} node {v:?} slot {slot}: bridges",
                        shape.label()
                    );
                }
                // find_aug == audited binary search; composed with
                // native_succ it equals the direct native lower bound.
                for &k in aug.keys {
                    for y in [k.saturating_sub(1), k, k.saturating_add(1)] {
                        let i = fc.find_aug(v, y);
                        assert_eq!(i, aug.keys.partition_point(|x| *x < y));
                        assert_eq!(
                            fc.native_result(v, i).native_idx as usize,
                            lower_bound(native, &y),
                            "{} bidir={bidir} node {v:?} y {y}",
                            shape.label()
                        );
                    }
                }
            }
            // Path searches over the flat structure match the naive oracle.
            let mut rng = SmallRng::seed_from_u64(shape.seed ^ 0xF1A7);
            for _ in 0..8 {
                let leaf = gen::random_leaf(t, &mut rng);
                let path = t.path_from_root(leaf);
                let y = rng.gen_range(-10..(shape.total as i64 * 16) + 10);
                let fcr = search_path_fc(&fc, &path, y, None);
                let nv = search_path_naive(t, &path, y, None);
                assert_eq!(fcr.results, nv.results, "{} bidir={bidir}", shape.label());
            }
        }
    }
}
