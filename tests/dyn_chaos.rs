//! Chaos gate for **incremental dynamic maintenance** under the full
//! stack (registered under fc-shard in `crates/shard/Cargo.toml`): a
//! sharded, replicated cluster whose replicas run the fc-dyn write path
//! (`ServeConfig::incremental`), driven by a mixed read/write storm with
//! injected corruption, a full-replica quarantine, and — the centerpiece —
//! a kill -9 mid-write-storm.
//!
//! Two gates:
//!
//! * [`incremental_storm_no_silent_wrongness_then_heals`]: mixed queries,
//!   per-key update batches, fault injections, and audits. Invariants:
//!   every `Ok` answer equals the sequential oracle *on the generation
//!   that served it* (wrongness never, staleness allowed), errors are
//!   typed, the write path stays incremental (no rebuild storms), and
//!   after the storm settles every shard range answers again.
//! * [`kill9_incremental_crash_recovery_gate`]: the parent re-execs this
//!   test binary as a child cluster process (filtered to
//!   [`dyn_crash_child_driver`]) with incremental replicas; the child
//!   streams durable per-key updates — acking each on stdout only *after*
//!   its WAL append returned — and dies by `std::process::abort()`
//!   mid-storm. The parent cold-starts the directory and proves every
//!   acked incremental update survived, answers are oracle-equal, and the
//!   recovered cluster keeps taking the incremental write path.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::{CatalogKey, CatalogTree, NodeId};
use fc_coop::dynamic::UpdateOp;
use fc_coop::{CoopStructure, ParamMode};
use fc_resilience::FaultSpec;
use fc_serve::ServeConfig;
use fc_shard::{DurableCluster, ShardCluster, ShardConfig, ShardedOk};
use fc_store::StoreConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn gen_oracle<K: CatalogKey>(st: &CoopStructure<K>, path: &[NodeId], y: K) -> Vec<Option<K>> {
    path.iter()
        .map(|&node| {
            let cat = st.tree().catalog(node);
            cat.get(cat.partition_point(|k| *k < y)).copied()
        })
        .collect()
}

/// Zero-silent-wrongness: every leg equals the oracle on the generation
/// that served it, and the merged answer is first-`Some` in shard order.
fn check_ok(ok: &ShardedOk<i64>, y: i64) {
    let mut merged = vec![None; ok.answers.len()];
    for leg in &ok.legs {
        assert_eq!(
            leg.answers,
            gen_oracle(&leg.gen.st, &leg.path, y),
            "leg on shard {} replica {} (gen {}) diverges from its own \
             generation — a silently wrong answer",
            leg.shard,
            leg.replica,
            leg.gen.id
        );
        for (slot, ans) in merged.iter_mut().zip(leg.answers.iter()) {
            if slot.is_none() {
                *slot = *ans;
            }
        }
    }
    assert_eq!(ok.answers, merged, "merged answer must be first-Some");
}

/// The storm cluster: 4×2, incremental write path, verified answers, no
/// degraded fallback (corruption must surface typed, never silently).
fn incr_chaos_cfg() -> ShardConfig {
    ShardConfig {
        shards: 4,
        replicas: 2,
        serve: ServeConfig {
            workers: 2,
            queue_cap: 256,
            default_deadline: Duration::from_secs(10),
            audit_interval: Duration::from_millis(40),
            processors: 1 << 8,
            degraded_reads: false,
            verify_answers: true,
            incremental: true,
            ..ServeConfig::default()
        },
        batch_threads: 2,
        escalation_legs: 8,
        default_deadline: Duration::from_secs(20),
        ..ShardConfig::default()
    }
}

/// One key strictly inside each shard's range.
fn shard_probes(cluster: &ShardCluster<i64>) -> Vec<i64> {
    let state = cluster.state();
    (0..state.table.shards())
        .map(|s| {
            let (lo, hi) = state.table.range_of(s);
            match (lo, hi) {
                (Some(&l), Some(&h)) => (l + h) / 2,
                (None, Some(&h)) => h - 1,
                (Some(&l), None) => l + 1,
                (None, None) => 0,
            }
        })
        .collect()
}

#[test]
fn incremental_storm_no_silent_wrongness_then_heals() {
    let mut rng = SmallRng::seed_from_u64(0xD1_C4A0);
    let tree = gen::balanced_binary(6, 3_000, SizeDist::Uniform, &mut rng);
    let cluster = ShardCluster::start(&tree, ParamMode::Auto, incr_chaos_cfg());
    let leaves = cluster.leaves();

    let mut ok_count = 0u64;
    let mut err_count = 0u64;
    let mut injected = 0u64;
    let mut writes = 0u64;
    for op in 0..260 {
        if op == 70 {
            assert!(
                cluster.force_quarantine_replica(2, 0),
                "quarantine must address a live replica"
            );
        }
        match rng.gen_range(0..100) {
            0..=49 => {
                let leaf = leaves[rng.gen_range(0..leaves.len())];
                let y = rng.gen_range(-500..60_000i64);
                match cluster.query_blocking(leaf, y, None) {
                    Ok(ok) => {
                        check_ok(&ok, y);
                        ok_count += 1;
                    }
                    Err(_typed) => err_count += 1,
                }
            }
            // Per-key update batches — the incremental write path.
            50..=79 => {
                let leaf = leaves[rng.gen_range(0..leaves.len())];
                let node = *tree.path_from_root(leaf).first().unwrap();
                let ops: Vec<UpdateOp<i64>> = (0..6)
                    .map(|_| {
                        let k = rng.gen_range(0..60_000i64);
                        if rng.gen_bool(0.7) {
                            UpdateOp::Insert(node, k)
                        } else {
                            UpdateOp::Remove(node, k)
                        }
                    })
                    .collect();
                cluster.update_batch(&ops);
                writes += ops.len() as u64;
            }
            80..=91 => {
                let state = cluster.state();
                let shard = rng.gen_range(0..state.table.shards());
                let replica = rng.gen_range(0..2);
                let seed = rng.gen();
                drop(state);
                if cluster
                    .inject(shard, replica, &FaultSpec::one_of_each(), seed)
                    .is_some()
                {
                    injected += 1;
                }
            }
            _ => cluster.trigger_audit_all(),
        }
    }
    assert!(injected > 0, "the storm must actually inject faults");
    assert!(ok_count > 0, "the storm must actually answer queries");
    assert!(writes > 0, "the storm must actually write");

    let ws = cluster.write_stats();
    assert!(
        ws.incremental_applies > 0,
        "replicas must take the fc-dyn fast path: {ws:?}"
    );
    // The fast path, not rebuild storms: strictly fewer rebuilds than
    // updates (the buffered baseline would rebuild every threshold-trip).
    assert!(
        ws.rebuilds < ws.incremental_applies,
        "incremental mode must not degenerate into rebuild storms: {ws:?}"
    );

    // Settle: audits repair (incremental cascade dirt heals by the
    // clone-and-rebuild fallback), breakers close under probe traffic.
    while cluster.audit_blocking_all() > 0 {}
    let leaf = leaves[0];
    for _ in 0..500 {
        let healed = cluster
            .health()
            .iter()
            .flatten()
            .all(|h| h.breaker == fc_serve::BreakerState::Closed);
        if healed {
            break;
        }
        for probe in shard_probes(&cluster) {
            let _ = cluster.query_blocking(leaf, probe, None);
        }
    }
    for (s, probe) in shard_probes(&cluster).iter().enumerate() {
        let ok = cluster
            .query_blocking(leaf, *probe, None)
            .unwrap_or_else(|e| panic!("shard {s} unanswerable after repair: {e}"));
        check_ok(&ok, *probe);
    }
    let _ = err_count;
    cluster.shutdown();
}

// ---------------------------------------------------------------- kill -9

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-dyn-chaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Durable config for the crash pair: incremental replicas, no background
/// audits (determinism), modest worker counts.
fn crash_cfg() -> ShardConfig {
    ShardConfig {
        shards: 3,
        replicas: 2,
        serve: ServeConfig {
            workers: 1,
            audit_interval: Duration::from_secs(3600),
            default_deadline: Duration::from_secs(5),
            processors: 1 << 8,
            incremental: true,
            ..ServeConfig::default()
        },
        batch_threads: 2,
        default_deadline: Duration::from_secs(10),
        ..ShardConfig::default()
    }
}

fn no_fsync() -> StoreConfig {
    StoreConfig {
        fsync: false,
        ..StoreConfig::default()
    }
}

/// The deterministic tree both sides of the gate construct.
fn crash_tree() -> CatalogTree<i64> {
    let mut rng = SmallRng::seed_from_u64(0xD1_C4A5);
    gen::balanced_binary(5, 1_500, SizeDist::Uniform, &mut rng)
}

/// The deterministic per-key update stream: mixed inserts and deletes
/// along one root-to-leaf path, keys striding the whole shard axis.
fn crash_ops(tree: &CatalogTree<i64>, leaf: NodeId) -> Vec<UpdateOp<i64>> {
    let path = tree.path_from_root(leaf);
    (0..300i64)
        .map(|i| {
            let node = path[(i as usize) % path.len()];
            let key = 100 + (i * 379) % 23_000;
            // Every 5th op deletes the key inserted 5 ops earlier, so the
            // WAL carries both op kinds and tombstoning is replayed too.
            if i % 5 == 4 {
                UpdateOp::Remove(node, 100 + ((i - 5) * 379) % 23_000)
            } else {
                UpdateOp::Insert(node, key)
            }
        })
        .collect()
}

/// CHILD SIDE. A no-op unless `FC_DYN_CRASH_DIR` is set (the parent sets
/// it when re-exec'ing this binary). Never returns normally when driven.
#[test]
fn dyn_crash_child_driver() {
    let Some(dir) = std::env::var_os("FC_DYN_CRASH_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let tree = crash_tree();
    // fsync on: an ack must mean "on disk" — the exact claim the parent
    // verifies after the abort.
    let dc = DurableCluster::create(
        &dir,
        &tree,
        ParamMode::Auto,
        crash_cfg(),
        StoreConfig::default(),
    )
    .expect("child: create");
    let v = dc
        .split_durable(1)
        .expect("child: split io")
        .expect("child: split refused");
    println!("TABLE_VERSION {v}");
    // Chaos: a distrusted replica and an injected corruption, while the
    // incremental update stream keeps appending.
    assert!(dc.cluster().force_quarantine_replica(0, 1));
    let _ = dc.cluster().inject(1, 0, &FaultSpec::one_of_each(), 7);
    let leaves = dc.cluster().leaves();
    let leaf = leaves[0];
    for (i, op) in crash_ops(&tree, leaf).iter().enumerate() {
        dc.update_batch(std::slice::from_ref(op))
            .expect("child: durable append");
        // Acked only after the WAL append (and its fsync) returned.
        match op {
            UpdateOp::Insert(node, key) => println!("ACKED I {} {}", node.0, key),
            UpdateOp::Remove(node, key) => println!("ACKED R {} {}", node.0, key),
        }
        if i % 17 == 0 {
            // Interleaved reads: the storm is not write-only.
            let _ = dc.cluster().query_blocking(leaf, 12_345, None);
        }
        if i == 211 {
            // kill -9 equivalent: no destructors, no checkpoint.
            // Everything after the last ack is torn.
            std::process::abort();
        }
    }
    unreachable!("child must abort before draining the stream");
}

/// PARENT SIDE: re-exec this binary as the incremental child cluster, let
/// it die by SIGABRT mid-write-storm, cold-start the directory, and prove
/// the recovery contract (see module docs).
#[test]
fn kill9_incremental_crash_recovery_gate() {
    let dir = tmp("kill9");
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .args([
            "dyn_crash_child_driver",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("FC_DYN_CRASH_DIR", &dir)
        .output()
        .expect("spawn child");
    assert!(
        !out.status.success(),
        "child must die by abort, not exit cleanly"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut table_version = None;
    let mut acked: Vec<UpdateOp<i64>> = Vec::new();
    for line in stdout.lines() {
        if let Some(at) = line.find("TABLE_VERSION ") {
            table_version = line[at + "TABLE_VERSION ".len()..]
                .trim()
                .parse::<u64>()
                .ok();
        } else if let Some(rest) = line.strip_prefix("ACKED ") {
            let mut it = rest.split_whitespace();
            let kind = it.next();
            let node = it.next().and_then(|s| s.parse::<u32>().ok());
            let key = it.next().and_then(|s| s.parse::<i64>().ok());
            match (kind, node, key) {
                (Some("I"), Some(n), Some(k)) => acked.push(UpdateOp::Insert(NodeId(n), k)),
                (Some("R"), Some(n), Some(k)) => acked.push(UpdateOp::Remove(NodeId(n), k)),
                _ => {}
            }
        }
    }
    let table_version = table_version.unwrap_or_else(|| {
        panic!(
            "child printed no table version.\nstdout:\n{stdout}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    assert_eq!(acked.len(), 212, "child acked exactly 212 ops then died");

    let (dc, rep) =
        DurableCluster::<i64>::cold_start(&dir, ParamMode::Auto, crash_cfg(), no_fsync())
            .unwrap_or_else(|e| panic!("cold start after kill -9: {e}"));
    assert_eq!(rep.table_version, table_version);
    assert!(
        rep.replayed_records > 0,
        "the acked tail lived only in the WALs"
    );
    // The child never checkpointed, so no rebuild markers were cut.
    assert_eq!(rep.rebuild_markers, 0);

    // Oracle: the deterministic tree plus the acked ops, in ack order.
    let tree = crash_tree();
    let mut cats: HashMap<u32, Vec<i64>> = tree
        .ids()
        .map(|id| (id.0, tree.catalog(id).to_vec()))
        .collect();
    for op in &acked {
        match *op {
            UpdateOp::Insert(node, key) => {
                let cat = cats.entry(node.0).or_default();
                if let Err(pos) = cat.binary_search(&key) {
                    cat.insert(pos, key);
                }
            }
            UpdateOp::Remove(node, key) => {
                let cat = cats.entry(node.0).or_default();
                if let Ok(pos) = cat.binary_search(&key) {
                    cat.remove(pos);
                }
            }
        }
    }
    let leaf = dc.cluster().leaves()[0];
    let path = tree.path_from_root(leaf);
    let oracle = |y: i64| -> Vec<Option<i64>> {
        path.iter()
            .map(|n| {
                let cat = &cats[&n.0];
                cat.get(cat.partition_point(|k| *k < y)).copied()
            })
            .collect()
    };
    let check = |y: i64| {
        let ok = dc
            .cluster()
            .query_blocking(leaf, y, None)
            .unwrap_or_else(|e| panic!("recovered query y={y}: {e}"));
        assert_eq!(ok.answers, oracle(y), "y={y}");
    };
    // (a) Every acked insert that was not later deleted is durable, and
    // every acked delete stayed deleted: successor probes around each
    // acked key must match the sequential oracle exactly.
    for op in &acked {
        let key = match *op {
            UpdateOp::Insert(_, k) | UpdateOp::Remove(_, k) => k,
        };
        check(key);
        check(key + 1);
    }
    // (b) Oracle equality inside every recovered shard range.
    let state = dc.cluster().state();
    for shard in 0..state.table.shards() {
        let (lo, hi) = state.table.range_of(shard);
        let lo = lo.copied().unwrap_or(-100);
        let hi = hi.copied().unwrap_or(50_000);
        check(lo);
        check((lo + hi) / 2);
        check(hi - 1);
    }
    drop(state);

    // (c) The recovered cluster keeps taking the incremental write path.
    let before = dc.cluster().write_stats();
    let fresh: Vec<UpdateOp<i64>> = (0..40)
        .map(|k| UpdateOp::Insert(leaf, 90_000 + k))
        .collect();
    dc.update_batch(&fresh).expect("post-recovery writes");
    let after = dc.cluster().write_stats();
    assert!(
        after.incremental_applies >= before.incremental_applies + 40,
        "recovered replicas must stay incremental: {before:?} -> {after:?}"
    );
    dc.shutdown();
    let _ = fs::remove_dir_all(&dir);
}
