//! Concurrency test for `fc-serve`: N reader threads against one updater
//! doing back-to-back forced rebuilds.
//!
//! Asserted invariants:
//!
//! * **Per-generation correctness** — every answer equals the sequential
//!   oracle computed on the generation that served it (`QueryOk::gen`),
//!   not on "the latest" structure;
//! * **Monotone generations** — a client's successive queries never
//!   observe the published generation going backwards;
//! * **Reader progress** — queries complete *while* a rebuild is in
//!   progress. Workers have no code path that takes the writer lock
//!   (rebuilds clone-and-swap via the epoch pointer), and this test
//!   observes that: with the updater rebuilding in a tight loop, queries
//!   still land inside rebuild windows.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::NodeId;
use fc_coop::dynamic::UpdateOp;
use fc_coop::{CoopStructure, ParamMode};
use fc_serve::{ServeConfig, Service};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn oracle(st: &CoopStructure<i64>, path: &[NodeId], y: i64) -> Vec<Option<i64>> {
    path.iter()
        .map(|&node| {
            let cat = st.tree().catalog(node);
            cat.get(cat.partition_point(|k| *k < y)).copied()
        })
        .collect()
}

#[test]
fn readers_progress_and_match_generation_oracles_under_rebuild_storm() {
    const READERS: u64 = 4;
    const QUERIES_PER_READER: u64 = 300;

    let mut rng = SmallRng::seed_from_u64(1201);
    let tree = gen::balanced_binary(7, 6000, SizeDist::Uniform, &mut rng);
    let cfg = ServeConfig {
        workers: 4,
        queue_cap: 256,
        default_deadline: Duration::from_secs(30),
        audit_interval: Duration::from_millis(50),
        processors: 1 << 10,
        ..ServeConfig::default()
    };
    let svc = Arc::new(Service::start(tree, ParamMode::Auto, cfg));
    let leaves = Arc::new(svc.snapshot().st.tree().leaves());
    let node_count = svc.snapshot().st.tree().len() as u32;

    let rebuilding = Arc::new(AtomicBool::new(false));
    let during_rebuild = Arc::new(AtomicU64::new(0));
    let published_ctr = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Updater: batches of updates plus a forced rebuild+publish, back to
    // back, until the readers are done.
    let updater = {
        let svc = Arc::clone(&svc);
        let rebuilding = Arc::clone(&rebuilding);
        let published_ctr = Arc::clone(&published_ctr);
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut rng = SmallRng::seed_from_u64(77);
            let mut published = 0u64;
            while !stop.load(SeqCst) {
                let ops: Vec<UpdateOp<i64>> = (0..64)
                    .map(|_| {
                        let node = NodeId(rng.gen_range(0..node_count));
                        let key = rng.gen_range(0..10_000_000i64);
                        if rng.gen_bool(0.7) {
                            UpdateOp::Insert(node, key)
                        } else {
                            UpdateOp::Remove(node, key)
                        }
                    })
                    .collect();
                rebuilding.store(true, SeqCst);
                svc.update_batch(&ops);
                svc.force_publish();
                rebuilding.store(false, SeqCst);
                published += 1;
                published_ctr.store(published, SeqCst);
            }
            published
        })
    };

    // Let the first rebuilt generation land before the readers start, so
    // every reader is guaranteed to observe a post-rebuild generation even
    // when queries are much faster than rebuilds.
    while published_ctr.load(SeqCst) < 1 {
        thread::sleep(Duration::from_millis(1));
    }

    let readers: Vec<_> = (0..READERS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let leaves = Arc::clone(&leaves);
            let rebuilding = Arc::clone(&rebuilding);
            let during_rebuild = Arc::clone(&during_rebuild);
            thread::spawn(move || {
                let mut rng = SmallRng::seed_from_u64(1000 + t);
                let mut last_gen = 0u64;
                for i in 0..QUERIES_PER_READER {
                    let leaf = leaves[rng.gen_range(0..leaves.len())];
                    let y = rng.gen_range(-5..10_000_005i64);
                    let flagged = rebuilding.load(SeqCst);
                    let ok = svc
                        .query_blocking(leaf, y, None)
                        .unwrap_or_else(|e| panic!("reader {t} query {i}: {e}"));
                    assert!(!ok.degraded, "no corruption injected here");
                    assert_eq!(ok.path, ok.gen.st.tree().path_from_root(leaf));
                    assert_eq!(
                        ok.answers,
                        oracle(&ok.gen.st, &ok.path, y),
                        "reader {t} query {i} on generation {}",
                        ok.gen.id
                    );
                    assert!(
                        ok.gen.id >= last_gen,
                        "reader {t}: generation went backwards ({} < {last_gen})",
                        ok.gen.id
                    );
                    last_gen = ok.gen.id;
                    // The whole query (submit → answer) landed inside one
                    // rebuild window: reader progress during a rebuild.
                    if flagged && rebuilding.load(SeqCst) {
                        during_rebuild.fetch_add(1, SeqCst);
                    }
                }
                last_gen
            })
        })
        .collect();

    let mut max_gen_seen = 0u64;
    for r in readers {
        max_gen_seen = max_gen_seen.max(r.join().expect("reader panicked"));
    }
    // A full rebuild is orders of magnitude slower than a query (especially
    // unoptimised), so fast readers can drain their quota before the
    // updater has looped much; let it reach a few publishes regardless of
    // build profile before stopping it.
    while published_ctr.load(SeqCst) < 3 {
        thread::sleep(Duration::from_millis(1));
    }
    stop.store(true, SeqCst);
    let published = updater.join().expect("updater panicked");

    assert!(published >= 3, "updater must have rebuilt repeatedly");
    assert!(
        max_gen_seen >= 1,
        "readers must observe rebuilt generations"
    );
    assert!(
        during_rebuild.load(SeqCst) > 0,
        "readers made no progress during rebuilds — are queries blocking on the writer lock?"
    );

    let Ok(svc) = Arc::try_unwrap(svc) else {
        panic!("service handle still shared after joins");
    };
    let stats = svc.shutdown();
    assert_eq!(stats.completed_exact, READERS * QUERIES_PER_READER);
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.corruption_detected, 0, "clean run must not blame");
    assert!(stats.generations_published >= published);
}
