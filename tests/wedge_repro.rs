// Scenario: crash right after segment rotation wrote the header (or the
// first record of the new segment was torn). On reopen, the writer's
// next_seq equals the header-only segment's start_seq; first append tries
// create_new on the same file name.
use fc_catalog::NodeId;
use fc_coop::dynamic::UpdateOp;
use fc_store::{Store, StoreConfig};
use std::fs;

#[test]
fn reopen_after_header_only_tail_can_append() {
    let dir = std::env::temp_dir().join(format!("wedge-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let cfg = StoreConfig {
        segment_bytes: 64,
        fsync: false,
        keep_snapshots: 2,
    };
    {
        let store = Store::<i64>::open(&dir, cfg).unwrap();
        for i in 0..3 {
            store
                .append_batch(&[UpdateOp::Insert(NodeId(0), i)])
                .unwrap();
        }
    }
    // Truncate the last segment down to just its header: the torn first
    // record of a freshly rotated segment.
    let segs = fc_store::fault::wal_segments(&dir).unwrap();
    let last = segs.last().unwrap();
    let len = fs::metadata(last).unwrap().len();
    fc_store::fault::truncate_tail(last, len - 28).unwrap();

    let store = Store::<i64>::open(&dir, cfg).unwrap();
    let r = store.append_batch(&[UpdateOp::Insert(NodeId(0), 99)]);
    assert!(r.is_ok(), "append after reopen failed: {:?}", r.err());
    let _ = fs::remove_dir_all(&dir);
}
