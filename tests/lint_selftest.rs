//! Selftest over the fc-lint canary fixture corpus: every shipped rule
//! must flag its known-bad fixture and stay silent on the known-good
//! twin. This is the same safety net the PR 2 discipline analyzer gets
//! from its detected-canary gate — an analyzer that stops seeing its
//! canaries is worse than no analyzer, because it keeps green-lighting
//! CI while blind.
//!
//! Wired as an integration test of `fc-lint` (fixtures live at
//! `crates/lint/fixtures/<rule>_bad.rs` / `<rule>_good.rs` with `-`
//! mapped to `_`).

use std::path::PathBuf;

use fc_lint::{check_fixture, rules, Finding};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name)
}

fn run(rule: &str, which: &str) -> Vec<Finding> {
    let file = format!("{}_{which}.rs", rule.replace('-', "_"));
    check_fixture(rule, &fixture(&file))
        .unwrap_or_else(|e| panic!("running `{rule}` over {file}: {e}"))
}

/// Every registered rule has a fixture pair, the bad one is flagged by
/// that rule, and the good twin is completely clean.
#[test]
fn every_rule_flags_its_bad_fixture_and_passes_its_good_twin() {
    let registry = rules::all();
    assert!(!registry.is_empty());
    for rule in &registry {
        let id = rule.id();
        let bad = run(id, "bad");
        assert!(
            bad.iter().any(|f| f.rule == id),
            "rule `{id}` failed to flag its known-bad fixture: {bad:?}"
        );
        let good = run(id, "good");
        assert!(
            good.is_empty(),
            "rule `{id}` (or the suppression meta-rule) flagged the known-good twin: {good:?}"
        );
    }
}

/// The lock rule sees all four effect classes (fsync, send, publish,
/// socket write) and the order inversion — not just one of them.
#[test]
fn lock_discipline_catches_every_effect_class() {
    let bad = run("lock-discipline", "bad");
    for needle in ["fsync", "send", "publish", "socket write", "order"] {
        assert!(
            bad.iter().any(|f| f.message.contains(needle)),
            "lock-discipline bad fixture missing a `{needle}` finding: {bad:?}"
        );
    }
}

/// The commit rule catches each of the three protocol inversions.
#[test]
fn commit_order_catches_every_protocol_inversion() {
    let bad = run("commit-order", "bad");
    for needle in [
        "never fsynced",
        "write-ahead violated",
        "commit point and must come last",
    ] {
        assert!(
            bad.iter().any(|f| f.message.contains(needle)),
            "commit-order bad fixture missing a `{needle}` finding: {bad:?}"
        );
    }
}

/// A reason-less suppression is inert (the underlying finding survives)
/// and is itself reported by the suppression meta-rule.
#[test]
fn reasonless_suppression_is_inert_and_reported() {
    let bad = check_fixture("panic-free", &fixture("suppression_bad.rs")).unwrap();
    assert!(
        bad.iter().any(|f| f.rule == "panic-free"),
        "reason-less suppression must not silence the finding: {bad:?}"
    );
    assert!(
        bad.iter().any(|f| f.rule == "suppression"),
        "missing the meta-rule finding for the reason-less suppression: {bad:?}"
    );

    let good = check_fixture("panic-free", &fixture("suppression_good.rs")).unwrap();
    assert!(
        good.is_empty(),
        "a reasoned suppression must silence exactly its rule: {good:?}"
    );
}

/// Unknown rule ids are rejected with the known list, both via selection
/// and inside `allow(...)` comments.
#[test]
fn unknown_rule_ids_are_rejected() {
    let err = match rules::select(&["no-such-rule".to_owned()]) {
        Err(e) => e,
        Ok(_) => panic!("selecting an unknown rule id must fail"),
    };
    assert!(err.contains("unknown rule"), "{err}");
    assert!(
        err.contains("lock-discipline"),
        "error should list known rules: {err}"
    );
}

/// The PR 10 incremental-cascade canaries: the strict rule must flag the
/// unchecked arena walk and the panicking apply, `hot-alloc` must flag
/// the per-update scratch allocation, and the rewritten twin — `.get`
/// with blamed `DynError`s, a cycle guard, no allocations — is clean
/// under both rules.
#[test]
fn dyn_incremental_canaries_cover_both_hot_rules() {
    let strict = check_fixture("hot-path-strict", &fixture("dyn_incremental_bad.rs")).unwrap();
    assert!(
        strict
            .iter()
            .any(|f| f.message.contains("direct slice indexing")),
        "strict rule missed the unchecked arena index: {strict:?}"
    );
    assert!(
        strict.iter().any(|f| f.message.contains("unwrap")),
        "strict rule missed the panicking apply: {strict:?}"
    );
    let alloc = check_fixture("hot-alloc", &fixture("dyn_incremental_bad.rs")).unwrap();
    assert!(
        alloc.iter().any(|f| f.rule == "hot-alloc"),
        "hot-alloc missed the per-update scratch allocation: {alloc:?}"
    );

    for rule in ["hot-path-strict", "hot-alloc"] {
        let good = check_fixture(rule, &fixture("dyn_incremental_good.rs")).unwrap();
        assert!(
            good.is_empty(),
            "rule `{rule}` flagged the known-good incremental twin: {good:?}"
        );
    }
}
