//! Property tests for the fc-store on-disk formats (registered under
//! fc-store in `crates/store/Cargo.toml`).
//!
//! Two families, per the durability contract:
//!
//! * **Snapshot round trip** — across arbitrary tree shapes and catalog
//!   sizes, write → read must reproduce a bit-identical re-encoding and a
//!   generation the `fc-resilience` blame audit calls clean.
//! * **WAL torn tail** — truncating the log at *every byte offset* of the
//!   final record must recover exactly the previous records, typed stats
//!   reporting the truncation; no offset may panic or mis-apply.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::dynamic::UpdateOp;
use fc_coop::{CoopStructure, ParamMode};
use fc_store::{fault, snapshot, wal};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-store-props-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn trees_equal(a: &CatalogTree<i64>, b: &CatalogTree<i64>) -> bool {
    a.len() == b.len()
        && a.ids()
            .all(|id| a.parent(id) == b.parent(id) && a.catalog(id) == b.catalog(id))
}

/// Snapshot round trip over a grid of shapes × sizes: decoded tree equals
/// the original, the re-encoding is bit-identical, and the preprocessed
/// structure audits clean.
#[test]
fn snapshot_round_trip_arbitrary_shapes() {
    let dir = tmp("shapes");
    let mut rng = SmallRng::seed_from_u64(0x5AFE_57A7E);
    let mut id = 0u64;
    for total in [1usize, 17, 300, 2_000] {
        let shapes: Vec<(&str, CatalogTree<i64>)> = vec![
            (
                "balanced",
                gen::balanced_binary(4, total, SizeDist::Uniform, &mut rng),
            ),
            (
                "heavy",
                gen::balanced_binary(3, total, SizeDist::SingleHeavy(0.7), &mut rng),
            ),
            ("path", gen::path(9, total, SizeDist::Uniform, &mut rng)),
            ("caterpillar", gen::caterpillar(7, total, &mut rng)),
            ("complete", gen::dary(2, 4, total, &mut rng)),
        ];
        for (shape, t) in shapes {
            id += 1;
            let path = snapshot::write_snapshot_file(&dir, id, &t, id, id * 10, false)
                .unwrap_or_else(|e| panic!("{shape}/{total}: write failed: {e}"));
            let bytes = fs::read(&path).unwrap();
            let data = snapshot::read_snapshot_file::<i64>(&path)
                .unwrap_or_else(|e| panic!("{shape}/{total}: read failed: {e}"));
            assert!(
                trees_equal(&t, &data.tree),
                "{shape}/{total}: decoded tree differs"
            );
            assert_eq!(
                bytes,
                snapshot::encode_snapshot(&data.tree, id, id * 10),
                "{shape}/{total}: re-encoding not bit-identical"
            );
            assert_eq!((data.logical_gen, data.wal_watermark), (id, id * 10));
            // The recovered tree must be servable: preprocess + blame audit.
            let st = CoopStructure::preprocess(data.tree, ParamMode::Auto);
            let report = fc_resilience::audit(&st);
            assert!(
                report.is_clean(),
                "{shape}/{total}: recovered tree audits dirty: {:?}",
                report.findings
            );
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

/// Truncate the WAL at every byte offset inside the final record's frame;
/// every offset must yield exactly the first k−1 records, report the torn
/// bytes, and never error or panic.
#[test]
fn wal_torn_tail_truncates_at_every_offset() {
    let master = tmp("torn-master");
    {
        let store = fc_store::Store::<i64>::open(
            &master,
            fc_store::StoreConfig {
                fsync: false,
                ..fc_store::StoreConfig::default()
            },
        )
        .unwrap();
        for i in 0..4i64 {
            store
                .append_batch(&[
                    UpdateOp::Insert(NodeId(0), 10 * i),
                    UpdateOp::Remove(NodeId(0), 10 * i + 1),
                ])
                .unwrap();
        }
    }
    let seg_name = fault::wal_segments(&master)
        .unwrap()
        .pop()
        .unwrap()
        .file_name()
        .unwrap()
        .to_owned();
    let full = fs::read(master.join(&seg_name)).unwrap();
    // Walk the length-prefixed frames (past the 28-byte segment header) to
    // find where the final record's frame starts.
    let mut pos = 28usize;
    let mut frame_start = pos;
    while pos < full.len() {
        frame_start = pos;
        let len = u32::from_le_bytes(full[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 4 + len + 4;
    }
    assert_eq!(pos, full.len(), "clean segment parses exactly");
    assert!(frame_start > 28, "more than one frame in the segment");
    // Now the property: every truncation offset within the final frame
    // recovers exactly records 1..=3 and reports the torn bytes.
    for cut in frame_start..full.len() {
        let dir = tmp("torn-cut");
        fs::write(dir.join(&seg_name), &full[..cut]).unwrap();
        let mut seqs = Vec::new();
        let stats = wal::replay::<i64, _>(&dir, 0, |seq, _| {
            seqs.push(seq);
            Ok(())
        })
        .unwrap_or_else(|e| panic!("cut at {cut}: replay errored: {e}"));
        assert_eq!(seqs, vec![1, 2, 3], "cut at {cut}");
        assert_eq!(
            stats.truncated_bytes,
            (cut - frame_start) as u64,
            "cut at {cut}: truncation accounting"
        );
        assert_eq!(stats.last_seq, 3, "cut at {cut}");
        let _ = fs::remove_dir_all(&dir);
    }
    let _ = fs::remove_dir_all(&master);
}

/// Random op batches persisted through the WAL replay to the same state as
/// applying them directly, for a spread of batch shapes and seeds.
#[test]
fn wal_replay_matches_direct_application() {
    for seed in 0..5u64 {
        let dir = tmp(&format!("replay-{seed}"));
        let mut rng = SmallRng::seed_from_u64(seed);
        let store = fc_store::Store::<i64>::open(
            &dir,
            fc_store::StoreConfig {
                segment_bytes: 128, // force rotations mid-stream
                fsync: false,
                keep_snapshots: 2,
            },
        )
        .unwrap();
        let mut direct: Vec<(u64, Vec<UpdateOp<i64>>)> = Vec::new();
        for seq in 1..=40u64 {
            let n = rng.gen_range(1..5);
            let ops: Vec<UpdateOp<i64>> = (0..n)
                .map(|_| {
                    let node = NodeId(rng.gen_range(0..8));
                    let key = rng.gen_range(-1000..1000);
                    if rng.gen_bool(0.5) {
                        UpdateOp::Insert(node, key)
                    } else {
                        UpdateOp::Remove(node, key)
                    }
                })
                .collect();
            assert_eq!(store.append_batch(&ops).unwrap(), seq);
            direct.push((seq, ops));
        }
        drop(store);
        let mut replayed: Vec<(u64, Vec<UpdateOp<i64>>)> = Vec::new();
        let stats = wal::replay::<i64, _>(&dir, 0, |seq, entry| {
            if let wal::WalEntry::Ops(ops) = entry {
                replayed.push((seq, ops.clone()));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(replayed, direct, "seed {seed}");
        assert!(stats.segments > 1, "seed {seed}: rotation exercised");
        let _ = fs::remove_dir_all(&dir);
    }
}
