//! Property tests for the `FCNET001` wire codec (registered under
//! fc-net in `crates/net/Cargo.toml`) — the wire twin of
//! `tests/store_props.rs`.
//!
//! Three families, per the ingress contract ("typed error, never a
//! panic, never a silent misparse"):
//!
//! * **Round trip** — every request/response shape, including extreme
//!   keys, empty payloads, unicode text, and every error code, decodes
//!   back to the value that was encoded, consuming exactly the frame.
//! * **Truncation at every byte offset** — cutting a valid frame at
//!   *every* prefix length must yield a typed [`ProtoError`]; no offset
//!   may panic or decode to a value.
//! * **Bit flip at every position** — flipping *every* bit of a valid
//!   frame must yield a typed error (magic check ahead of the CRC, CRC
//!   over everything else); no flip may decode to a value.

use fc_net::proto::{
    self, Request, Response, WireAnswer, DEFAULT_MAX_FRAME_LEN, HEADER_LEN, MAX_TEXT, TRAILER_LEN,
};
use fc_net::{ErrorCode, ProtoError, WireError};

/// A corpus frame: name (for failure messages), bytes, and whether it is
/// a request (decoded with `decode_request`) or a response.
struct Fixture {
    name: &'static str,
    bytes: Vec<u8>,
    is_request: bool,
}

fn requests() -> Vec<(&'static str, Request<i64>)> {
    vec![
        (
            "query/plain",
            Request::Query {
                leaf: 7,
                key: 1234,
                deadline_ms: 250,
            },
        ),
        (
            "query/extremes",
            Request::Query {
                leaf: u32::MAX,
                key: i64::MIN,
                deadline_ms: u32::MAX,
            },
        ),
        (
            "query/zeroes",
            Request::Query {
                leaf: 0,
                key: 0,
                deadline_ms: 0,
            },
        ),
        ("health", Request::Health),
        ("shutdown", Request::Shutdown),
    ]
}

fn responses() -> Vec<(&'static str, Response<i64>)> {
    let mut out: Vec<(&'static str, Response<i64>)> = vec![
        (
            "answer/empty",
            Response::Answer(WireAnswer {
                table_version: 0,
                entries: vec![],
            }),
        ),
        (
            "answer/mixed",
            Response::Answer(WireAnswer {
                table_version: u64::MAX,
                entries: (0..40)
                    .map(|i| {
                        let node = i as u32 * 3;
                        if i % 3 == 0 {
                            (node, None)
                        } else {
                            (node, Some(i as i64 - 20))
                        }
                    })
                    .collect(),
            }),
        ),
        (
            "health/unicode",
            Response::Health("héalth ✓\nqueue 0\n".to_owned()),
        ),
        ("bye", Response::Bye),
    ];
    for code in [
        ErrorCode::Overloaded,
        ErrorCode::Timeout,
        ErrorCode::BudgetExhausted,
        ErrorCode::ShardUnavailable,
        ErrorCode::ShuttingDown,
        ErrorCode::Protocol,
        ErrorCode::Internal,
    ] {
        out.push((
            "error",
            Response::Error(WireError {
                code,
                detail: format!("detail for {code:?} — ünïcode"),
            }),
        ));
    }
    out.push((
        "error/empty-detail",
        Response::Error(WireError {
            code: ErrorCode::Timeout,
            detail: String::new(),
        }),
    ));
    out
}

fn corpus() -> Vec<Fixture> {
    let mut out = Vec::new();
    for (name, req) in requests() {
        out.push(Fixture {
            name,
            bytes: proto::encode_request(&req),
            is_request: true,
        });
    }
    for (name, resp) in responses() {
        out.push(Fixture {
            name,
            bytes: proto::encode_response(&resp),
            is_request: false,
        });
    }
    out
}

/// Decode `bytes` with the fixture's decoder and assert a typed error,
/// exercising Display on the way (no panic formatting any error).
fn assert_typed_err(f: &Fixture, bytes: &[u8], what: &str) {
    if f.is_request {
        match proto::decode_request::<i64>(bytes, DEFAULT_MAX_FRAME_LEN) {
            Err(e) => {
                let _ = format!("{e}");
            }
            Ok((v, used)) => panic!(
                "{}/{what}: decoded {v:?} (used {used}) from damaged bytes",
                f.name
            ),
        }
    } else {
        match proto::decode_response::<i64>(bytes, DEFAULT_MAX_FRAME_LEN) {
            Err(e) => {
                let _ = format!("{e}");
            }
            Ok((v, used)) => panic!(
                "{}/{what}: decoded {v:?} (used {used}) from damaged bytes",
                f.name
            ),
        }
    }
}

#[test]
fn every_request_round_trips() {
    for (name, req) in requests() {
        let bytes = proto::encode_request(&req);
        let (back, used) = proto::decode_request::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN)
            .unwrap_or_else(|e| panic!("{name}: round trip failed: {e}"));
        assert_eq!(back, req, "{name}: decoded request differs");
        assert_eq!(used, bytes.len(), "{name}: frame not fully consumed");
    }
}

#[test]
fn every_response_round_trips() {
    for (name, resp) in responses() {
        let bytes = proto::encode_response(&resp);
        let (back, used) = proto::decode_response::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN)
            .unwrap_or_else(|e| panic!("{name}: round trip failed: {e}"));
        assert_eq!(back, resp, "{name}: decoded response differs");
        assert_eq!(used, bytes.len(), "{name}: frame not fully consumed");
    }
}

/// The envelope is exactly what the module docs promise: magic, type,
/// little-endian length, payload, CRC-32 over `type ‖ len ‖ payload`
/// computed by the same `fc_store::crc32` the WAL uses.
#[test]
fn envelope_layout_matches_spec() {
    let bytes = proto::encode_request::<i64>(&Request::Query {
        leaf: 3,
        key: 99,
        deadline_ms: 10,
    });
    assert_eq!(&bytes[..8], proto::MAGIC.as_slice());
    assert_eq!(bytes[8], proto::T_QUERY);
    let plen = u32::from_le_bytes(bytes[9..13].try_into().unwrap()) as usize;
    assert_eq!(bytes.len(), HEADER_LEN + plen + TRAILER_LEN);
    let carried = u32::from_le_bytes(bytes[HEADER_LEN + plen..].try_into().unwrap());
    let computed = fc_store::crc32(&bytes[8..HEADER_LEN + plen]);
    assert_eq!(carried, computed, "CRC span must be type ‖ len ‖ payload");
}

/// Cut every corpus frame at every byte offset: each prefix must decode
/// to a typed error (`Truncated` until the envelope completes, never a
/// value, never a panic).
#[test]
fn truncation_at_every_offset_is_typed() {
    for f in corpus() {
        for cut in 0..f.bytes.len() {
            assert_typed_err(&f, &f.bytes[..cut], &format!("cut@{cut}"));
        }
        // A sub-header prefix must specifically report Truncated, so a
        // streaming reader knows to wait for more bytes rather than
        // abandon the connection.
        if f.is_request {
            match proto::decode_request::<i64>(&f.bytes[..HEADER_LEN - 1], DEFAULT_MAX_FRAME_LEN) {
                Err(ProtoError::Truncated { have, .. }) => assert_eq!(have, HEADER_LEN - 1),
                other => panic!("{}: sub-header cut gave {other:?}", f.name),
            }
        }
    }
}

/// Flip every bit of every corpus frame: each mutant must decode to a
/// typed error. The magic check catches the first 8 bytes; the CRC
/// catches every bit of type, length, payload, and the CRC itself.
#[test]
fn bit_flip_at_every_position_is_typed() {
    for f in corpus() {
        for at in 0..f.bytes.len() {
            for bit in 0..8u8 {
                let mut m = f.bytes.clone();
                m[at] ^= 1 << bit;
                assert_typed_err(&f, &m, &format!("flip@{at}.{bit}"));
            }
        }
    }
}

/// Frames are length-prefixed so they can stream back to back: decoding
/// the front of a concatenation consumes exactly one frame and leaves
/// the next intact.
#[test]
fn streaming_frames_decode_back_to_back() {
    let a = proto::encode_request::<i64>(&Request::Query {
        leaf: 1,
        key: 5,
        deadline_ms: 0,
    });
    let b = proto::encode_request::<i64>(&Request::Health);
    let mut joined = a.clone();
    joined.extend_from_slice(&b);
    joined.extend_from_slice(b"trailing garbage the framer never reads");
    let (first, used_a) = proto::decode_request::<i64>(&joined, DEFAULT_MAX_FRAME_LEN).unwrap();
    assert_eq!(used_a, a.len());
    assert!(matches!(first, Request::Query { leaf: 1, .. }));
    let (second, used_b) =
        proto::decode_request::<i64>(&joined[used_a..], DEFAULT_MAX_FRAME_LEN).unwrap();
    assert_eq!(used_b, b.len());
    assert_eq!(second, Request::Health);
}

/// Forged length fields — zero, off-by-one both ways, the cap, past the
/// cap, `u32::MAX` — must each produce a typed error (`Oversized` past
/// the cap *before any allocation*, CRC/truncation otherwise).
#[test]
fn forged_length_fields_are_typed() {
    for f in corpus() {
        let true_len = (f.bytes.len() - HEADER_LEN - TRAILER_LEN) as u32;
        for forged in [
            0u32,
            true_len.wrapping_sub(1),
            true_len + 1,
            DEFAULT_MAX_FRAME_LEN,
            DEFAULT_MAX_FRAME_LEN + 1,
            u32::MAX,
        ] {
            if forged == true_len {
                continue;
            }
            let mut m = f.bytes.clone();
            m[9..13].copy_from_slice(&forged.to_le_bytes());
            assert_typed_err(&f, &m, &format!("len={forged}"));
            if forged > DEFAULT_MAX_FRAME_LEN {
                let got = proto::decode_request::<i64>(&m, DEFAULT_MAX_FRAME_LEN);
                assert!(
                    matches!(got, Err(ProtoError::Oversized { .. })),
                    "{}: len={forged} should refuse on the cap, got {got:?}",
                    f.name
                );
            }
        }
    }
}

/// Width confusion between an i32 client and an i64 server (and vice
/// versa) is a typed `KeyWidth` error, not a misparse: the width byte is
/// checked before any key bytes are read.
#[test]
fn key_width_confusion_is_typed_both_ways() {
    let as32 = proto::encode_request::<i32>(&Request::Query {
        leaf: 2,
        key: 7i32,
        deadline_ms: 0,
    });
    match proto::decode_request::<i64>(&as32, DEFAULT_MAX_FRAME_LEN) {
        Err(ProtoError::KeyWidth {
            expected: 8,
            found: 4,
        }) => {}
        other => panic!("i32→i64 gave {other:?}"),
    }
    let as64 = proto::encode_request::<i64>(&Request::Query {
        leaf: 2,
        key: 7i64,
        deadline_ms: 0,
    });
    match proto::decode_request::<i32>(&as64, DEFAULT_MAX_FRAME_LEN) {
        Err(ProtoError::KeyWidth {
            expected: 4,
            found: 8,
        }) => {}
        other => panic!("i64→i32 gave {other:?}"),
    }
}

/// The encoder clips hostile-length text at a char boundary instead of
/// emitting an oversized frame; multi-byte characters survive the clip.
#[test]
fn text_clip_respects_char_boundaries() {
    let long = "é".repeat(MAX_TEXT); // 2 bytes per char, 2×MAX_TEXT bytes
    let bytes = proto::encode_response::<i64>(&Response::Health(long));
    let (back, _) = proto::decode_response::<i64>(&bytes, DEFAULT_MAX_FRAME_LEN).unwrap();
    match back {
        Response::Health(t) => {
            assert!(t.len() <= MAX_TEXT);
            assert!(t.chars().all(|c| c == 'é'));
        }
        other => panic!("expected Health, got {other:?}"),
    }
}
