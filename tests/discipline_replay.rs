//! Property tests for the discipline analyzer: the *production* pipelined
//! build and explicit cooperative search, replayed under shadow memory
//! across randomized tree shapes and the paper's processor sweep
//! p ∈ {1, √n, n}, must stay bit-identical to the untraced runs and free
//! of EREW/CREW violations — and the canary configurations must be caught.

use fc_analyze::replay::{
    replay_build_level, replay_build_pipelined, replay_search, replay_search_degraded, TreeShape,
};
use fc_pram::Model;

fn isqrt(n: usize) -> usize {
    let mut r = (n as f64).sqrt() as usize;
    while (r + 1) * (r + 1) <= n {
        r += 1;
    }
    while r * r > n {
        r -= 1;
    }
    r.max(1)
}

fn shapes() -> Vec<TreeShape> {
    let mut out = Vec::new();
    for (i, &(height, total, heavy)) in [
        (3u32, 220usize, None),
        (4, 700, None),
        (5, 1300, Some(0.7)),
        (6, 2600, None),
        (7, 5200, Some(0.9)),
    ]
    .iter()
    .enumerate()
    {
        out.push(TreeShape {
            height,
            total,
            heavy,
            seed: 0x5EED0 + i as u64,
        });
    }
    out
}

#[test]
fn pipelined_build_replays_erew_clean_across_random_shapes() {
    for shape in shapes() {
        let rep = replay_build_pipelined(shape, Model::Erew);
        assert!(rep.matched, "{}: traced build diverged", rep.shape);
        assert!(
            rep.clean,
            "{}: EREW violations in pipelined build: {:?}",
            rep.shape, rep.blame
        );
    }
}

#[test]
fn level_build_replays_erew_clean_across_random_shapes() {
    for shape in shapes() {
        let rep = replay_build_level(shape, Model::Erew);
        assert!(rep.matched && rep.clean, "{}: {:?}", rep.shape, rep.blame);
    }
}

#[test]
fn explicit_search_replays_crew_clean_across_shapes_and_p() {
    for shape in shapes() {
        for p in [1, isqrt(shape.total), shape.total] {
            let rep = replay_search(shape, p, Model::Crew, 6, true);
            assert!(
                rep.matched,
                "{} p={p}: traced search diverged from untraced",
                rep.shape
            );
            assert!(
                rep.clean,
                "{} p={p}: CREW violations: {:?}",
                rep.shape, rep.blame
            );
        }
    }
}

/// The hop machinery (Steps 2–4 of Theorem 1) only engages on deep trees
/// at large p; that configuration must also replay CREW-clean, and the
/// same run checked against EREW must be *detected* with full blame —
/// otherwise the checker itself is broken.
#[test]
fn deep_search_is_crew_clean_and_an_erew_canary() {
    let deep = TreeShape {
        height: 12,
        total: 1 << 16,
        heavy: None,
        seed: 0x5EEDD,
    };
    let clean = replay_search(deep, 1 << 20, Model::Crew, 3, true);
    assert!(clean.matched && clean.clean, "{:?}", clean.blame);
    assert!(
        clean
            .phases
            .iter()
            .any(|ph| ph.phase == "search/hop-windows"),
        "deep configuration must engage the hop machinery"
    );

    let canary = replay_search(deep, 1 << 20, Model::Erew, 2, false);
    assert!(canary.matched && !canary.clean);
    let blame = canary.blame.expect("canary must carry blame");
    assert!(
        blame.phase.starts_with("search/"),
        "phase = {}",
        blame.phase
    );
    assert!(blame.pids.len() >= 2, "pids = {:?}", blame.pids);
}

/// Scheduled mid-run processor kills: dead pids' accesses are dropped from
/// the shadow log, discipline stays clean, and results remain exact.
#[test]
fn degraded_search_stays_clean_with_scheduled_kills() {
    let deep = TreeShape {
        height: 12,
        total: 1 << 16,
        heavy: None,
        seed: 0x5EEDE,
    };
    let rep = replay_search_degraded(deep, 1 << 18, 3);
    assert!(
        rep.matched,
        "kills must drop accesses yet keep results exact"
    );
    assert!(rep.clean, "{:?}", rep.blame);
}
