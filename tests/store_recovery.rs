//! Crash-recovery gate for the durable cluster (registered under
//! fc-shard in `crates/shard/Cargo.toml`).
//!
//! The centerpiece is the **kill -9 gate**: the parent test re-execs this
//! very test binary as a child cluster process (filtered to
//! [`crash_child_driver`]), which builds a durable cluster, splits a
//! shard, quarantines a replica, streams durable update batches — acking
//! each on stdout *after* its WAL append returns — and then dies by
//! `std::process::abort()` (SIGABRT: no destructors, no flushes, the
//! process-level equivalent of `kill -9`) mid-storm. The parent
//! cold-starts the same directory and proves:
//!
//! * the routing-table version the child last committed is restored;
//! * every acked update is present — durability of acknowledged writes;
//! * answers equal the sequential oracle (original tree + acked ops) on
//!   probes inside **every** recovered shard range.
//!
//! Around the gate sit regression tests for the uglier corners: a
//! quarantined replica plus a WAL caught mid-rotation (duplicated final
//! record in a fresh segment) must recover cleanly through idempotent
//! sequence-number replay; fully corrupt snapshots and a missing middle
//! WAL segment must refuse with *typed* errors — never a panic, never a
//! silently smaller cluster.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::dynamic::UpdateOp;
use fc_coop::ParamMode;
use fc_serve::ServeConfig;
use fc_shard::{DurableCluster, ShardConfig};
use fc_store::manifest::{epoch_dir, shard_dir};
use fc_store::{fault, StoreConfig, StoreError};
use std::collections::HashMap;
use std::fs;
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fc-store-rec-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(shards: usize, replicas: usize) -> ShardConfig {
    ShardConfig {
        shards,
        replicas,
        serve: ServeConfig {
            workers: 1,
            audit_interval: Duration::from_secs(3600),
            default_deadline: Duration::from_secs(5),
            processors: 1 << 8,
            ..ServeConfig::default()
        },
        batch_threads: 2,
        default_deadline: Duration::from_secs(10),
        ..ShardConfig::default()
    }
}

fn no_fsync() -> StoreConfig {
    StoreConfig {
        fsync: false,
        ..StoreConfig::default()
    }
}

/// The deterministic tree both sides of the kill -9 gate construct.
fn crash_tree() -> CatalogTree<i64> {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(0xC0A5_7A57);
    gen::balanced_binary(5, 1500, SizeDist::Uniform, &mut rng)
}

/// The deterministic update stream the child acks from.
fn crash_ops(tree: &CatalogTree<i64>, leaf: NodeId) -> Vec<(NodeId, i64)> {
    let path = tree.path_from_root(leaf);
    (0..400i64)
        .map(|i| {
            let node = path[(i as usize) % path.len()];
            // A full-period stride over the key axis so every shard's
            // WAL sees traffic (the child splits, so shard count is 4).
            let key = 100 + (i * 379) % 23_000;
            (node, key)
        })
        .collect()
}

/// CHILD SIDE of the kill -9 gate. A no-op unless `FC_STORE_CRASH_DIR`
/// is set (the parent sets it when re-exec'ing this binary). Never
/// returns normally when driven: it aborts mid-storm.
#[test]
fn crash_child_driver() {
    let Some(dir) = std::env::var_os("FC_STORE_CRASH_DIR") else {
        return;
    };
    let dir = PathBuf::from(dir);
    let tree = crash_tree();
    // fsync on: the child's acks must mean "on disk", exactly the claim
    // the parent verifies.
    let dc = DurableCluster::create(
        &dir,
        &tree,
        ParamMode::Auto,
        cfg(3, 2),
        StoreConfig::default(),
    )
    .expect("child: create");
    let v = dc
        .split_durable(1)
        .expect("child: split io")
        .expect("child: split refused");
    println!("TABLE_VERSION {v}");
    // Chaos: distrust one replica entirely; queries must fail over while
    // the update stream keeps appending.
    assert!(dc.cluster().force_quarantine_replica(0, 1));
    let leaves = dc.cluster().leaves();
    let leaf = leaves[0];
    for (i, (node, key)) in crash_ops(&tree, leaf).iter().enumerate() {
        dc.update_batch(&[UpdateOp::Insert(*node, *key)])
            .expect("child: durable append");
        // Acked only after the WAL append (and its fsync) returned.
        println!("ACKED {} {}", node.0, key);
        if i % 23 == 0 {
            // Interleave reads so the storm is not write-only.
            let _ = dc.cluster().query_blocking(leaf, *key, None);
        }
        if i == 317 {
            // kill -9 equivalent: no destructors, no shutdown, no
            // checkpoint. Everything after the last ack is torn.
            std::process::abort();
        }
    }
    unreachable!("child must abort before draining the stream");
}

/// PARENT SIDE: re-exec this test binary as the child cluster process,
/// let it die by SIGABRT mid-storm, cold-start the directory it left
/// behind, and prove the recovery contract (see module docs).
#[test]
fn kill9_crash_recovery_gate() {
    let dir = tmp("kill9");
    let exe = std::env::current_exe().expect("current_exe");
    let out = Command::new(exe)
        .args([
            "crash_child_driver",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("FC_STORE_CRASH_DIR", &dir)
        .output()
        .expect("spawn child");
    assert!(
        !out.status.success(),
        "child must die by abort, not exit cleanly"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let mut table_version = None;
    let mut acked: Vec<(u32, i64)> = Vec::new();
    // The libtest harness prints "test crash_child_driver ... " with no
    // newline before the test's own output, so match by substring.
    for line in stdout.lines() {
        if let Some(at) = line.find("TABLE_VERSION ") {
            table_version = line[at + "TABLE_VERSION ".len()..]
                .trim()
                .parse::<u64>()
                .ok();
        } else if let Some(rest) = line.strip_prefix("ACKED ") {
            let mut it = rest.split_whitespace();
            let node = it.next().and_then(|s| s.parse::<u32>().ok());
            let key = it.next().and_then(|s| s.parse::<i64>().ok());
            if let (Some(n), Some(k)) = (node, key) {
                acked.push((n, k));
            }
        }
    }
    let table_version = table_version.unwrap_or_else(|| {
        panic!(
            "child printed no table version.\nstdout:\n{stdout}\nstderr:\n{}",
            String::from_utf8_lossy(&out.stderr)
        )
    });
    assert_eq!(acked.len(), 318, "child acked exactly 318 ops then died");

    let (dc, rep) = DurableCluster::<i64>::cold_start(&dir, ParamMode::Auto, cfg(3, 2), no_fsync())
        .unwrap_or_else(|e| panic!("cold start after kill -9: {e}"));
    assert_eq!(
        rep.table_version, table_version,
        "routing-table version must survive the crash"
    );
    assert_eq!(dc.cluster().table_version(), table_version);
    assert!(
        rep.replayed_records > 0,
        "the acked tail lived only in the WALs"
    );

    // Oracle: the deterministic tree plus every acked insert.
    let tree = crash_tree();
    let mut cats: HashMap<u32, Vec<i64>> = tree
        .ids()
        .map(|id| (id.0, tree.catalog(id).to_vec()))
        .collect();
    for &(node, key) in &acked {
        cats.entry(node).or_default().push(key);
    }
    for keys in cats.values_mut() {
        keys.sort_unstable();
        keys.dedup();
    }
    let leaf = dc.cluster().leaves()[0];
    let path = tree.path_from_root(leaf);
    let oracle = |y: i64| -> Vec<Option<i64>> {
        path.iter()
            .map(|n| {
                let cat = &cats[&n.0];
                cat.get(cat.partition_point(|k| *k < y)).copied()
            })
            .collect()
    };
    let check = |y: i64| {
        let ok = dc
            .cluster()
            .query_blocking(leaf, y, None)
            .unwrap_or_else(|e| panic!("recovered query y={y}: {e}"));
        assert_eq!(ok.answers, oracle(y), "y={y}");
    };
    // (a) Every acked key is durable: its own successor query returns it.
    for &(node, key) in &acked {
        let ok = dc.cluster().query_blocking(leaf, key, None).unwrap();
        let hit = ok
            .path
            .iter()
            .zip(&ok.answers)
            .any(|(n, a)| n.0 == node && *a == Some(key));
        assert!(hit, "acked key {key} at node {node} lost by the crash");
    }
    // (b) Oracle equality on probes inside *every* recovered shard
    // range, plus the boundaries around each acked key.
    let state = dc.cluster().state();
    for shard in 0..state.table.shards() {
        let (lo, hi) = state.table.range_of(shard);
        let lo = lo.copied().unwrap_or(-100);
        let hi = hi.copied().unwrap_or(50_000);
        check(lo);
        check((lo + hi) / 2);
        check(hi - 1);
    }
    drop(state);
    for &(_, key) in acked.iter().step_by(13) {
        check(key - 1);
        check(key + 1);
    }
    dc.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Regression: a replica quarantined while a shard's WAL sits
/// mid-rotation (final record duplicated into a fresh segment — exactly
/// what a crash between "write new segment" and "advance" leaves) must
/// cold-start cleanly, with the duplicate skipped by sequence-number
/// idempotency, not applied twice.
#[test]
fn quarantined_replica_and_half_rotated_wal_recover() {
    let dir = tmp("halfrot");
    let tree = crash_tree();
    let dc = DurableCluster::create(&dir, &tree, ParamMode::Auto, cfg(2, 2), no_fsync()).unwrap();
    let leaf = dc.cluster().leaves()[0];
    let node = tree.path_from_root(leaf)[1];
    let keys: Vec<i64> = (0..30).map(|i| 60_000_000 + i * 11).collect();
    for &k in &keys {
        dc.update_batch(&[UpdateOp::Insert(node, k)]).unwrap();
    }
    // Quarantine a whole replica, then keep writing: the durable log
    // must not care about serving-side health.
    assert!(dc.cluster().force_quarantine_replica(0, 0));
    let extra: Vec<i64> = (0..10).map(|i| 61_000_000 + i * 11).collect();
    for &k in &extra {
        dc.update_batch(&[UpdateOp::Insert(node, k)]).unwrap();
    }
    drop(dc); // unclean stop: tail lives only in the WALs

    // All high keys route to the last shard: half-rotate its WAL.
    let state_dir = shard_dir(&epoch_dir(&dir, 1), 1);
    let rotated = fault::half_rotate_last_segment(&state_dir)
        .expect("io")
        .expect("a record to duplicate");
    assert!(rotated.exists());

    let (dc2, rep) =
        DurableCluster::<i64>::cold_start(&dir, ParamMode::Auto, cfg(2, 2), no_fsync()).unwrap();
    assert!(
        rep.skipped_records >= 1,
        "duplicated record must be skipped by seq idempotency, got {rep:?}"
    );
    for &k in keys.iter().chain(&extra) {
        let ok = dc2.cluster().query_blocking(leaf, k, None).unwrap();
        let hit = ok
            .path
            .iter()
            .zip(&ok.answers)
            .any(|(n, a)| *n == node && *a == Some(k));
        assert!(hit, "key {k} lost across quarantine + half rotation");
    }
    dc2.shutdown();
    let _ = fs::remove_dir_all(&dir);
}

/// Every snapshot of one shard corrupted: cold start must refuse with a
/// typed error — never serve a cluster missing a shard's data.
#[test]
fn all_snapshots_corrupt_is_a_typed_refusal() {
    let dir = tmp("allcorrupt");
    let tree = crash_tree();
    let dc = DurableCluster::create(&dir, &tree, ParamMode::Auto, cfg(2, 1), no_fsync()).unwrap();
    dc.checkpoint().unwrap();
    drop(dc);
    let sdir = shard_dir(&epoch_dir(&dir, 1), 0);
    let snaps = fault::snapshot_files(&sdir).unwrap();
    assert!(!snaps.is_empty());
    for snap in snaps {
        fault::flip_byte(&snap, 40, 0xFF).unwrap();
    }
    let res = DurableCluster::<i64>::cold_start(&dir, ParamMode::Auto, cfg(2, 1), no_fsync());
    // With every candidate corrupt, the newest snapshot's typed error
    // propagates (checksum here; the flip is inside the CRC'd header).
    match res {
        Err(StoreError::ChecksumMismatch { .. }) => {}
        Err(e) => panic!("wrong error class for corrupt snapshots: {e}"),
        Ok(_) => panic!("corrupt snapshots must be a typed refusal, not a served cluster"),
    }
    let _ = fs::remove_dir_all(&dir);
}

/// A WAL segment deleted from the middle of a shard's log: replay must
/// refuse with `MissingSegment` — applying around a hole would serve a
/// silently wrong history.
#[test]
fn missing_middle_segment_is_typed() {
    let dir = tmp("gap");
    let tree = crash_tree();
    // Tiny segments force many rotations.
    let store_cfg = StoreConfig {
        segment_bytes: 128,
        fsync: false,
        keep_snapshots: 2,
    };
    let dc = DurableCluster::create(&dir, &tree, ParamMode::Auto, cfg(2, 1), store_cfg).unwrap();
    let leaf = dc.cluster().leaves()[0];
    let node = tree.path_from_root(leaf)[1];
    for i in 0..40i64 {
        dc.update_batch(&[UpdateOp::Insert(node, 70_000_000 + i)])
            .unwrap();
    }
    drop(dc);
    let sdir = shard_dir(&epoch_dir(&dir, 1), 1);
    let segs = fault::wal_segments(&sdir).unwrap();
    assert!(segs.len() >= 3, "need a middle segment, got {}", segs.len());
    fs::remove_file(&segs[1]).unwrap();
    let res = DurableCluster::<i64>::cold_start(&dir, ParamMode::Auto, cfg(2, 1), store_cfg);
    assert!(
        matches!(res, Err(StoreError::MissingSegment { .. })),
        "a WAL hole must be a typed refusal"
    );
    let _ = fs::remove_dir_all(&dir);
}
