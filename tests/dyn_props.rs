//! Property tests for incremental dynamic catalog maintenance (fc-dyn).
//!
//! The contract under test: a [`DynamicCoop`] in incremental mode, fed an
//! arbitrary interleaving of inserts, deletes, and searches, answers every
//! search exactly as a structure **rebuilt from scratch** over the same
//! logical catalogs would — across tree shapes, sizes, and delete-heavy
//! mixes — and under injected corruption it degrades to a *typed* error or
//! a correct answer, never a wrong one, with the next write forcing the
//! clone-and-rebuild fallback that heals the cascade.
//!
//! Three oracles cross-check each other at every probe point:
//!
//! 1. a plain `BTreeSet` per node (successor = `range(y..).next()`),
//! 2. a buffered-mode [`DynamicCoop`] force-rebuilt immediately before the
//!    comparison (the literal "rebuild the world" baseline), and
//! 3. the incremental structure's own `logical_catalog`.

use std::collections::BTreeSet;

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::dynamic::DynamicCoop;
use fc_coop::ParamMode;
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Key axis for generated ops: small enough that inserts collide and
/// deletes hit live keys, so tombstones and same-key churn are exercised.
const KEY_SPAN: i64 = 4_096;

fn pram() -> Pram {
    Pram::new(1 << 16, Model::Crew)
}

/// Per-node set oracle: the logical catalogs, maintained independently.
struct SetOracle {
    cats: Vec<BTreeSet<i64>>,
}

impl SetOracle {
    fn new(tree: &CatalogTree<i64>) -> Self {
        let cats = tree
            .ids()
            .map(|id| tree.catalog(id).iter().copied().collect())
            .collect();
        Self { cats }
    }

    fn insert(&mut self, node: NodeId, key: i64) {
        self.cats[node.0 as usize].insert(key);
    }

    fn remove(&mut self, node: NodeId, key: i64) {
        self.cats[node.0 as usize].remove(&key);
    }

    fn answers(&self, path: &[NodeId], y: i64) -> Vec<Option<i64>> {
        path.iter()
            .map(|n| self.cats[n.0 as usize].range(y..).next().copied())
            .collect()
    }
}

/// One random interleaving on `tree`: every op is applied to the
/// incremental structure, the buffered baseline, and the set oracle; every
/// `probe_every` ops, all three must agree on successor answers along a
/// random root-to-leaf path (probing random keys plus the boundary keys
/// around recently touched ones).
fn run_interleaving(tree: CatalogTree<i64>, seed: u64, ops: usize, probe_every: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut incr = DynamicCoop::new_incremental(tree.clone(), ParamMode::Auto, 0.25);
    // frac = infinity: the baseline never rebuilds on its own, so each
    // probe's force_rebuild really is "from scratch, right now".
    let mut scratch = DynamicCoop::new(tree.clone(), ParamMode::Auto, f64::INFINITY);
    let mut oracle = SetOracle::new(&tree);
    let mut p = pram();
    let node_count = tree.len() as u32;
    let mut touched: Vec<i64> = Vec::new();

    for step in 0..ops {
        let node = NodeId(rng.gen_range(0..node_count));
        // Bias deletes toward keys that exist so tombstoning is real work,
        // but keep misses in the mix (they must be no-ops everywhere).
        let deleting = rng.gen_bool(0.45);
        let key = if deleting && rng.gen_bool(0.7) {
            let cat = &oracle.cats[node.0 as usize];
            if cat.is_empty() {
                rng.gen_range(0..KEY_SPAN)
            } else {
                let skip = rng.gen_range(0..cat.len());
                *cat.iter().nth(skip).expect("non-empty")
            }
        } else {
            rng.gen_range(0..KEY_SPAN)
        };
        if deleting {
            incr.remove(node, key, &mut p);
            scratch.remove(node, key, &mut p);
            oracle.remove(node, key);
        } else {
            incr.insert(node, key, &mut p);
            scratch.insert(node, key, &mut p);
            oracle.insert(node, key);
        }
        touched.push(key);

        if (step + 1) % probe_every != 0 {
            continue;
        }
        scratch.force_rebuild(&mut p);
        let leaf = gen::random_leaf(incr.structure().tree(), &mut rng);
        let path = incr.structure().tree().path_from_root(leaf);
        let mut probes: Vec<i64> = (0..6).map(|_| rng.gen_range(-1..KEY_SPAN + 1)).collect();
        for &k in touched.iter().rev().take(4) {
            probes.extend([k - 1, k, k + 1]);
        }
        for y in probes {
            let want = oracle.answers(&path, y);
            let got = incr.search(&path, y, &mut pram());
            assert_eq!(got, want, "incremental vs set oracle, y={y} step={step}");
            let checked = incr
                .search_checked(&path, y, &mut pram())
                .expect("uncorrupted cascade must not err");
            assert_eq!(checked, want, "search_checked vs set oracle, y={y}");
            let rebuilt = scratch.search(&path, y, &mut pram());
            assert_eq!(rebuilt, want, "rebuild-from-scratch vs set oracle, y={y}");
        }
        touched.clear();
    }

    // Terminal state: logical catalogs identical to the oracle's, buffers
    // structurally clean, no rebuild ever failed its self-audit.
    for id in incr.structure().tree().ids() {
        let want: Vec<i64> = oracle.cats[id.0 as usize].iter().copied().collect();
        assert_eq!(incr.logical_catalog(id), want, "catalog drift at {id:?}");
    }
    incr.audit_buffers()
        .unwrap_or_else(|b| panic!("audit after {ops} ops: {b:?}"));
    let gs = incr.gen_stats();
    assert_eq!(gs.audit_failures, 0);
    assert!(
        gs.incremental_applies >= ops as u64,
        "every op must take the incremental path ({} < {ops})",
        gs.incremental_applies
    );
}

#[test]
fn interleavings_match_rebuild_on_balanced_trees() {
    let mut rng = SmallRng::seed_from_u64(0xD1_01);
    for (depth, total, seed) in [(3u32, 600usize, 11u64), (5, 2_000, 12), (7, 5_000, 13)] {
        let tree = gen::balanced_binary(depth, total, SizeDist::Uniform, &mut rng);
        run_interleaving(tree, seed, 600, 60);
    }
}

#[test]
fn interleavings_match_rebuild_across_shapes() {
    let mut rng = SmallRng::seed_from_u64(0xD1_02);
    let shapes: Vec<(&str, CatalogTree<i64>)> = vec![
        ("path", gen::path(9, 1_400, SizeDist::RootHeavy, &mut rng)),
        ("caterpillar", gen::caterpillar(7, 1_600, &mut rng)),
        // d-ary trees go through Theorem 3's binarization first — the
        // dynamic layer, like the static one, operates on binary trees.
        (
            "binarized-dary",
            fc_coop::general::binarize(&gen::dary(4, 3, 2_400, &mut rng)).tree,
        ),
        (
            "skewed-binary",
            gen::balanced_binary(4, 1_200, SizeDist::SingleHeavy(0.4), &mut rng),
        ),
    ];
    for (i, (label, tree)) in shapes.into_iter().enumerate() {
        eprintln!("shape sweep: {label}");
        run_interleaving(tree, 0xD1_10 + i as u64, 500, 50);
    }
}

/// Delete-heavy churn with an aggressive density config: compaction
/// fallbacks fire mid-interleaving, and answers stay oracle-equal across
/// the generation cuts.
#[test]
fn delete_storms_stay_oracle_equal_through_compaction() {
    let mut rng = SmallRng::seed_from_u64(0xD1_03);
    let tree = gen::balanced_binary(4, 1_500, SizeDist::Uniform, &mut rng);
    let cfg = fc_dyn::DynConfig {
        min_dead: 32,
        dead_frac: 0.15,
        ..Default::default()
    };
    let mut incr = DynamicCoop::new_incremental_with(tree.clone(), ParamMode::Auto, 0.25, cfg);
    let mut oracle = SetOracle::new(&tree);
    let mut p = pram();
    let node_count = tree.len() as u32;

    for step in 0..1_200 {
        let node = NodeId(rng.gen_range(0..node_count));
        // 80% deletes of live keys: drive the tombstone ratio up until the
        // density invariant trips.
        if rng.gen_bool(0.8) && !oracle.cats[node.0 as usize].is_empty() {
            let cat = &oracle.cats[node.0 as usize];
            let skip = rng.gen_range(0..cat.len());
            let key = *cat.iter().nth(skip).expect("non-empty");
            incr.remove(node, key, &mut p);
            oracle.remove(node, key);
        } else {
            let key = rng.gen_range(0..KEY_SPAN);
            incr.insert(node, key, &mut p);
            oracle.insert(node, key);
        }
        if step % 97 == 0 {
            let leaf = gen::random_leaf(incr.structure().tree(), &mut rng);
            let path = incr.structure().tree().path_from_root(leaf);
            let y = rng.gen_range(0..KEY_SPAN);
            assert_eq!(incr.search(&path, y, &mut pram()), oracle.answers(&path, y));
        }
    }
    let gs = incr.gen_stats();
    assert!(
        gs.fallback_rebuilds >= 1,
        "a or-so-80% delete storm with min_dead=32 must trip compaction"
    );
    assert_eq!(gs.audit_failures, 0);
    incr.audit_buffers().expect("post-storm audit");
    for id in incr.structure().tree().ids() {
        let want: Vec<i64> = oracle.cats[id.0 as usize].iter().copied().collect();
        assert_eq!(incr.logical_catalog(id), want);
    }
}

/// Fault injection, read side: a corrupted bridge makes `search_checked`
/// return either the oracle answer or a **typed** error — never a wrong
/// answer — while the plain `search` degrades to the authoritative flat
/// scan and stays oracle-equal throughout.
#[test]
fn corrupted_bridge_is_typed_or_correct_never_wrong() {
    let mut rng = SmallRng::seed_from_u64(0xFA_01);
    let tree = gen::balanced_binary(4, 2_000, SizeDist::Uniform, &mut rng);
    let mut incr = DynamicCoop::new_incremental(tree.clone(), ParamMode::Auto, 0.25);
    let oracle = SetOracle::new(&tree);
    let root = tree.root();
    let leaves = tree.leaves();

    assert!(
        incr.incremental_mut_for_fault_injection()
            .expect("incremental mode")
            .corrupt_bridge_for_fault_injection(root.0),
        "root must hold a sample to corrupt"
    );
    assert!(
        incr.audit_buffers().is_err(),
        "the audit must blame the dirty cascade"
    );

    let mut saw_typed = false;
    for &leaf in [leaves[0], leaves[leaves.len() - 1]].iter() {
        let path = tree.path_from_root(leaf);
        for y in (0..KEY_SPAN).step_by(131) {
            let want = oracle.answers(&path, y);
            match incr.search_checked(&path, y, &mut pram()) {
                Ok(got) => assert_eq!(got, want, "checked Ok must be exact, y={y}"),
                Err(e) => {
                    // Typed, attributable corruption — and attributable to
                    // a real node of this tree.
                    assert!((e.node() as usize) < tree.len(), "blame in range: {e:?}");
                    saw_typed = true;
                }
            }
            assert_eq!(
                incr.search(&path, y, &mut pram()),
                want,
                "degraded search must stay oracle-equal, y={y}"
            );
        }
    }
    assert!(saw_typed, "the corrupted bridge must surface a typed error");
}

/// Fault injection, write side: a torn link makes the next writes park and
/// the settle pass fire the clone-and-rebuild fallback; afterwards the
/// cascade audits clean, every acked write is visible, and searches are
/// oracle-equal again on the fast path.
#[test]
fn corrupted_link_forces_fallback_then_heals() {
    let mut rng = SmallRng::seed_from_u64(0xFA_02);
    let tree = gen::balanced_binary(4, 1_800, SizeDist::Uniform, &mut rng);
    let mut incr = DynamicCoop::new_incremental(tree.clone(), ParamMode::Auto, 0.25);
    let mut oracle = SetOracle::new(&tree);
    let mut p = pram();
    let root = tree.root();

    assert!(
        incr.incremental_mut_for_fault_injection()
            .expect("incremental mode")
            .corrupt_link_for_fault_injection(root.0),
        "root list must be corruptible"
    );
    let before = incr.gen_stats().fallback_rebuilds;
    for k in 0..150i64 {
        let key = 100_000 + k;
        incr.insert(root, key, &mut p);
        oracle.insert(root, key);
    }
    let gs = incr.gen_stats();
    assert!(
        gs.fallback_rebuilds > before,
        "parked writes must force the rebuild fallback"
    );
    assert_eq!(gs.audit_failures, 0, "the healing rebuild must audit clean");
    incr.audit_buffers().expect("cascade clean after fallback");
    // No acked write was lost to the fault, and the fast path is exact.
    let want: Vec<i64> = oracle.cats[root.0 as usize].iter().copied().collect();
    assert_eq!(incr.logical_catalog(root), want);
    let leaf = tree.leaves()[0];
    let path = tree.path_from_root(leaf);
    for y in (99_990..100_160).step_by(7) {
        let want = oracle.answers(&path, y);
        assert_eq!(
            incr.search_checked(&path, y, &mut pram())
                .expect("healed cascade must not err"),
            want
        );
    }
}
