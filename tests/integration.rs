//! Cross-crate integration tests: full pipelines from workload generation
//! through preprocessing to queries, covering every theorem end-to-end.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::invariants;
use fc_catalog::search::{search_path_fc, search_path_naive};
use fc_catalog::CascadedTree;
use fc_coop::explicit::coop_search_explicit;
use fc_coop::general::{binarize, coop_search_binarized};
use fc_coop::implicit::{
    coop_search_implicit, implicit_search_seq, ConsistentLeafOracle, LeafOracleAdapter,
};
use fc_coop::{CoopStructure, ParamMode};
use fc_geom::cooploc::locate_coop;
use fc_geom::septree::{locate_sequential, SeparatorTree};
use fc_geom::spatial::{locate_spatial_coop, SpatialComplex, SpatialLocator, SpatialParams};
use fc_geom::subdivision::{MonotoneSubdivision, SubdivisionParams};
use fc_pram::{Model, Pram};
use fc_retrieval::range2d::{random_points, RangeTree2D, Rect};
use fc_retrieval::segint::{random_segments, HQuery, SegmentIntersection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Theorem 1 pipeline: every search algorithm agrees on every query, for
/// every processor count and both parameter modes.
#[test]
fn theorem1_all_algorithms_agree() {
    let mut rng = SmallRng::seed_from_u64(1001);
    for dist in [
        SizeDist::Uniform,
        SizeDist::SingleHeavy(0.6),
        SizeDist::LeafHeavy,
    ] {
        let tree = gen::balanced_binary(9, 15_000, dist, &mut rng);
        for mode in [ParamMode::Theory, ParamMode::Auto] {
            let st = CoopStructure::preprocess(tree.clone(), mode);
            // The cascade invariants hold on the preprocessed structure.
            invariants::validate(&invariants::check_all(st.cascade())).unwrap();
            for _ in 0..10 {
                let leaf = gen::random_leaf(st.tree(), &mut rng);
                let path = st.tree().path_from_root(leaf);
                let y = rng.gen_range(-10..15_000 * 16 + 10);
                let naive = search_path_naive(st.tree(), &path, y, None);
                let fc = search_path_fc(st.cascade(), &path, y, None);
                assert_eq!(naive, fc);
                for p in [1usize, 100, 1 << 13, 1 << 21] {
                    let mut pram = Pram::new(p, Model::Crew);
                    let coop = coop_search_explicit(&st, &path, y, &mut pram);
                    assert_eq!(coop.finds, naive.results, "{dist:?} {mode:?} p={p}");
                }
            }
        }
    }
}

/// Theorem 1 (implicit) pipeline: cooperative implicit search finds the
/// same path and the same entries as the sequential implicit search.
#[test]
fn theorem1_implicit_pipeline() {
    let mut rng = SmallRng::seed_from_u64(1003);
    let tree = gen::balanced_binary(8, 8000, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    for _ in 0..20 {
        let target = gen::random_leaf(st.tree(), &mut rng);
        let oracle = ConsistentLeafOracle::new(st.tree(), target);
        let adapter = LeafOracleAdapter::new(st.tree(), &oracle);
        let y = rng.gen_range(0..8000 * 16);
        let seq = implicit_search_seq(&st, &adapter, y, None);
        let mut pram = Pram::new(1 << 15, Model::Crew);
        let coop = coop_search_implicit(&st, &adapter, y, &mut pram);
        assert_eq!(seq.path, coop.path);
        assert_eq!(seq.finds, coop.finds);
    }
}

/// Theorem 3 pipeline: a degree-6 tree binarized and searched.
#[test]
fn theorem3_binarized_pipeline() {
    let mut rng = SmallRng::seed_from_u64(1005);
    let tree = gen::dary(6, 3, 6000, &mut rng);
    let bin = binarize(&tree);
    let st = CoopStructure::preprocess(bin.tree.clone(), ParamMode::Auto);
    for _ in 0..15 {
        let leaf = gen::random_leaf(&tree, &mut rng);
        let path = tree.path_from_root(leaf);
        let y = rng.gen_range(-5..6000 * 16 + 5);
        let naive = search_path_naive(&tree, &path, y, None);
        let mut pram = Pram::new(1 << 16, Model::Crew);
        let (finds, _) = coop_search_binarized(&st, &bin, bin.old_to_new[leaf.idx()], y, &mut pram);
        assert_eq!(finds, naive.results);
    }
}

/// Theorem 4 pipeline: generation -> separator tree -> both locators vs
/// brute force, over a grid of generator parameters.
#[test]
fn theorem4_planar_pipeline() {
    let mut rng = SmallRng::seed_from_u64(1007);
    for (regions, strips, stick) in [(32usize, 8usize, 0.2f64), (256, 20, 0.5), (64, 64, 0.7)] {
        let sub = MonotoneSubdivision::generate(
            SubdivisionParams {
                regions,
                strips,
                stick,
                detach: 0.4,
            },
            &mut rng,
        );
        let t = SeparatorTree::build(sub, ParamMode::Auto);
        for _ in 0..60 {
            let (x, y) = t.sub.random_query(&mut rng);
            let want = t.sub.locate_brute(x, y);
            let (s, _) = locate_sequential(&t, x, y, None);
            assert_eq!(s, want);
            let mut pram = Pram::new(1 << 18, Model::Crew);
            let (c, stats) = locate_coop(&t, x, y, &mut pram);
            assert_eq!(c, want);
            assert_eq!(stats.fallbacks, 0);
        }
    }
}

/// Theorem 5 pipeline: spatial complexes across coincidence levels.
#[test]
fn theorem5_spatial_pipeline() {
    let mut rng = SmallRng::seed_from_u64(1009);
    for coincide in [0.0, 0.4, 0.9] {
        let complex = SpatialComplex::generate(
            SpatialParams {
                cells: 32,
                footprint: SubdivisionParams {
                    regions: 32,
                    strips: 10,
                    stick: 0.4,
                    detach: 0.4,
                },
                coincide,
            },
            &mut rng,
        );
        let loc = SpatialLocator::build(complex, ParamMode::Auto);
        for _ in 0..40 {
            let (x, y, z) = loc.complex.random_query(&mut rng);
            let want = loc.complex.locate_brute(x, y, z);
            let mut pram = Pram::new(1 << 16, Model::Crew);
            let (got, _) = locate_spatial_coop(&loc, x, y, z, &mut pram);
            assert_eq!(got, want, "coincide {coincide}");
        }
    }
}

/// Theorem 6 pipeline: retrieval structures against brute force with both
/// retrieval models, checking the k-dependence of the direct model.
#[test]
fn theorem6_retrieval_pipeline() {
    let mut rng = SmallRng::seed_from_u64(1011);
    let si = SegmentIntersection::build(random_segments(3000, 10_000, &mut rng), ParamMode::Auto);
    let rt = RangeTree2D::build(random_points(2048, 1 << 16, &mut rng), ParamMode::Auto);
    for _ in 0..40 {
        let x0 = rng.gen_range(0..10_000);
        let q = HQuery {
            y: rng.gen_range(0..10_000),
            x_lo: x0,
            x_hi: x0 + rng.gen_range(0..5000),
        };
        let mut pd = Pram::new(256, Model::Crew);
        let list = si.query_coop(q, true, &mut pd);
        assert_eq!(si.collect_ids(&list), si.query_brute(q));

        let (a, b) = (rng.gen_range(0i64..1 << 16), rng.gen_range(0i64..1 << 16));
        let (c, d) = (rng.gen_range(0i64..1 << 16), rng.gen_range(0i64..1 << 16));
        let r = Rect {
            x1: a.min(b),
            x2: a.max(b),
            y1: c.min(d),
            y2: c.max(d),
        };
        let mut pr = Pram::new(256, Model::Crew);
        let rl = rt.query_coop(r, true, &mut pr);
        assert_eq!(rt.collect_ids(&rl), rt.query_brute(r));
    }
}

/// The bidirectional cascade (required by Lemma 1) searches identically to
/// the downward-only cascade.
#[test]
fn bidirectional_and_downward_cascades_agree_on_searches() {
    let mut rng = SmallRng::seed_from_u64(1013);
    let tree = gen::balanced_binary(8, 6000, SizeDist::Uniform, &mut rng);
    let down = CascadedTree::build(tree.clone(), 4);
    let bidir = CascadedTree::build_bidir(tree.clone(), 4);
    for _ in 0..20 {
        let leaf = gen::random_leaf(&tree, &mut rng);
        let path = tree.path_from_root(leaf);
        let y = rng.gen_range(-5..6000 * 16 + 5);
        assert_eq!(
            search_path_fc(&down, &path, y, None),
            search_path_fc(&bidir, &path, y, None)
        );
    }
    // Both satisfy the forward invariants.
    invariants::validate(&invariants::check_all(&down)).unwrap();
    invariants::validate(&invariants::check_all(&bidir)).unwrap();
}

/// End-to-end determinism: identical seeds produce identical structures,
/// searches, and step counts (required for reproducible experiments).
#[test]
fn experiments_are_deterministic() {
    let run = || {
        let mut rng = SmallRng::seed_from_u64(1015);
        let tree = gen::balanced_binary(8, 5000, SizeDist::Uniform, &mut rng);
        let st = CoopStructure::preprocess(tree, ParamMode::Auto);
        let leaf = gen::random_leaf(st.tree(), &mut rng);
        let path = st.tree().path_from_root(leaf);
        let mut pram = Pram::new(1 << 14, Model::Crew);
        let out = coop_search_explicit(&st, &path, 1234, &mut pram);
        (out.finds, pram.steps(), st.total_space_words())
    };
    assert_eq!(run(), run());
}
