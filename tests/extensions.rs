//! Integration tests for the extension modules: pipelined construction
//! feeding the cooperative search, float-keyed structures, batch queries,
//! dynamic updates, caterpillar/path topologies, and the Euler-tour
//! substrate.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::key::OrdF64;
use fc_catalog::pipeline::build_pipelined;
use fc_catalog::search::search_path_naive;
use fc_catalog::{CatalogTree, NodeId};
use fc_coop::explicit::coop_search_explicit;
use fc_coop::general::coop_search_long_path;
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The pipelined construction's output drives the cooperative search
/// end-to-end (build -> preprocess -> search -> verify).
#[test]
fn pipelined_build_feeds_cooperative_search() {
    let mut rng = SmallRng::seed_from_u64(3001);
    let tree = gen::balanced_binary(8, 10_000, SizeDist::Uniform, &mut rng);
    let (fc, stats) = build_pipelined(tree, 4, None);
    assert!(stats.rounds > 0);
    let st = CoopStructure::from_cascade(fc, ParamMode::Auto);
    for _ in 0..15 {
        let leaf = gen::random_leaf(st.tree(), &mut rng);
        let path = st.tree().path_from_root(leaf);
        let y = rng.gen_range(0..160_000);
        let naive = search_path_naive(st.tree(), &path, y, None);
        let mut pram = Pram::new(1 << 18, Model::Crew);
        let coop = coop_search_explicit(&st, &path, y, &mut pram);
        assert_eq!(coop.finds, naive.results);
    }
}

/// Float-keyed catalogs (OrdF64) work through the whole stack — the same
/// machinery the geometry crate relies on.
#[test]
fn float_keys_through_the_whole_stack() {
    let mut rng = SmallRng::seed_from_u64(3003);
    // Build a float-keyed tree by hand: complete binary, random sorted
    // float catalogs.
    let parents = gen::complete_binary_parents(5);
    let catalogs: Vec<Vec<OrdF64>> = (0..parents.len())
        .map(|_| {
            let mut v: Vec<f64> = (0..rng.gen_range(0..40))
                .map(|_| rng.gen_range(0.0..1000.0))
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v.dedup();
            v.into_iter().map(OrdF64::new).collect()
        })
        .collect();
    let tree = CatalogTree::from_parents(parents, catalogs);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    for _ in 0..20 {
        let leaf = gen::random_leaf(st.tree(), &mut rng);
        let path = st.tree().path_from_root(leaf);
        let y = OrdF64::new(rng.gen_range(-1.0..1001.0));
        let naive = search_path_naive(st.tree(), &path, y, None);
        let mut pram = Pram::new(1 << 12, Model::Crew);
        let coop = coop_search_explicit(&st, &path, y, &mut pram);
        assert_eq!(coop.finds, naive.results);
    }
}

/// Theorem 2 machinery on caterpillars (bounded degree, long spine).
#[test]
fn long_path_search_on_caterpillars() {
    let mut rng = SmallRng::seed_from_u64(3005);
    let tree = gen::caterpillar(200, 4000, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    // The deepest leaf gives the longest path.
    let leaf = *st
        .tree()
        .leaves()
        .iter()
        .max_by_key(|&&l| st.tree().depth(l))
        .unwrap();
    let path = st.tree().path_from_root(leaf);
    assert!(path.len() >= 200);
    for p in [1usize, 1 << 12, 1 << 24] {
        let y = rng.gen_range(0..64_000);
        let naive = search_path_naive(st.tree(), &path, y, None);
        let mut pram = Pram::new(p, Model::Crew);
        let out = coop_search_long_path(&st, &path, y, 0.5, &mut pram);
        assert_eq!(out.finds, naive.results, "p {p}");
    }
}

/// Batch queries agree with individual queries and cover every leaf of a
/// small tree exhaustively.
#[test]
fn batch_covers_every_leaf() {
    let mut rng = SmallRng::seed_from_u64(3007);
    let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let queries: Vec<(NodeId, i64)> = st
        .tree()
        .leaves()
        .into_iter()
        .map(|l| (l, rng.gen_range(0..32_000)))
        .collect();
    let out = fc_coop::batch::explicit_batch(&st, &queries, 1 << 14);
    assert_eq!(out.len(), queries.len());
    for ((res, _), &(leaf, y)) in out.iter().zip(&queries) {
        let path = st.tree().path_from_root(leaf);
        let naive = search_path_naive(st.tree(), &path, y, None);
        assert_eq!(res.finds, naive.results);
    }
}

/// The Euler-tour depth computation agrees with stored depths on every
/// generator family.
#[test]
fn euler_depths_across_topologies() {
    let mut rng = SmallRng::seed_from_u64(3009);
    let trees = vec![
        gen::balanced_binary(7, 500, SizeDist::Uniform, &mut rng),
        gen::path(50, 200, SizeDist::Uniform, &mut rng),
        gen::caterpillar(30, 300, &mut rng),
        gen::dary(5, 3, 400, &mut rng),
    ];
    for tree in trees {
        let mut pram = Pram::new(4 * tree.len(), Model::Erew);
        let depths = tree.depths_parallel(&mut pram);
        for id in tree.ids() {
            assert_eq!(depths[id.idx()], tree.depth(id));
        }
    }
}

/// Dynamic + batch interplay: a dynamic structure can be rebuilt and its
/// static snapshot batch-queried.
#[test]
fn dynamic_snapshot_supports_batches() {
    use fc_coop::dynamic::DynamicCoop;
    let mut rng = SmallRng::seed_from_u64(3011);
    let tree = gen::balanced_binary(6, 2000, SizeDist::Uniform, &mut rng);
    let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 0.05);
    let mut pram = Pram::new(1 << 12, Model::Crew);
    // Enough inserts to force at least one rebuild (threshold 5% of n).
    let nodes = dy.structure().tree().len() as u32;
    for _ in 0..2000 {
        dy.insert(
            NodeId(rng.gen_range(0..nodes)),
            rng.gen_range(0..1_000_000),
            &mut pram,
        );
    }
    assert!(dy.rebuilds >= 1);
    // The rebuilt static structure answers batches with the inserted keys
    // visible.
    let queries: Vec<(NodeId, i64)> = (0..50)
        .map(|_| {
            (
                gen::random_leaf(dy.structure().tree(), &mut rng),
                rng.gen_range(0..1_000_000),
            )
        })
        .collect();
    let out = fc_coop::batch::explicit_batch(dy.structure(), &queries, 1 << 12);
    for ((res, _), &(leaf, y)) in out.iter().zip(&queries) {
        let path = dy.structure().tree().path_from_root(leaf);
        let naive = search_path_naive(dy.structure().tree(), &path, y, None);
        assert_eq!(res.finds, naive.results);
    }
}
