//! Access-discipline checks: the paper claims specific PRAM models for its
//! algorithms (EREW preprocessing, CREW search, CRCW only for indirect
//! retrieval). These tests execute the *round structure* of representative
//! algorithm phases on the traced memory and assert the claimed discipline
//! is respected.

use fc_pram::traced::{ConflictKind, TracedMem};
use fc_pram::Model;

/// EREW parallel merge by rank computation: each of the n output slots is
/// written by exactly one processor, and each processor reads only its own
/// element plus disjoint probe cells when ranks are precomputed — modelled
/// here as the final scatter round of the level-synchronous cascade build.
#[test]
fn erew_merge_scatter_round_is_clean() {
    let a: Vec<i64> = (0..64).map(|i| 2 * i).collect();
    let b: Vec<i64> = (0..64).map(|i| 2 * i + 1).collect();
    // Memory layout: [a (64) | b (64) | out (128)].
    let mut cells = vec![0i64; 256];
    cells[..64].copy_from_slice(&a);
    cells[64..128].copy_from_slice(&b);
    let mut mem = TracedMem::new(cells, Model::Erew);

    // Round: processor i handles a[i] (i < 64) or b[i-64]; its output rank
    // is i's own value (a[i] = 2i goes to slot 2i; b[j] to 2j+1) — each
    // processor reads one private cell and writes one private cell.
    mem.round(128, |pid, ctx| {
        let v = *ctx.read(pid);
        let rank = if pid < 64 {
            2 * pid
        } else {
            2 * (pid - 64) + 1
        };
        ctx.write(128 + rank, v);
    });
    assert!(mem.violations().is_empty(), "{:?}", mem.violations());
    let out = &mem.cells()[128..];
    assert!(out.windows(2).all(|w| w[0] <= w[1]));
}

/// The skeleton-key fill is EREW because Lemma 1 makes the written cells
/// distinct: tree j's key for node z goes to a private matrix slot, and
/// the bridge cells read by different trees are distinct (disjoint keys).
#[test]
fn erew_skeleton_fill_round_is_clean() {
    // Simulate one level of the fill: m = 8 trees, each reading its own
    // parent key cell (distinct by Lemma 1) and writing its own child key
    // cell.
    let m = 8usize;
    let mut mem = TracedMem::new((0..m as i64 * 2).collect::<Vec<i64>>(), Model::Erew);
    mem.round(m, |pid, ctx| {
        let parent_key = *ctx.read(pid); // tree j's parent key cell
        ctx.write(m + pid, parent_key + 1); // tree j's child key cell
    });
    assert!(mem.violations().is_empty());
}

/// The cooperative hop is CREW, not EREW: every processor of a window
/// reads the shared query key and the shared skeleton key, but each writes
/// only its own candidate-result cell.
#[test]
fn crew_hop_round_has_concurrent_reads_but_exclusive_writes() {
    let window = 32usize;
    // Memory: [query key | skeleton key | catalog (window) | results (window)]
    let mut cells = vec![0i64; 2 + 2 * window];
    cells[0] = 17; // y
    for (i, c) in cells[2..2 + window].iter_mut().enumerate() {
        *c = i as i64; // catalog values 0..window
    }
    let mut mem = TracedMem::new(cells, Model::Crew);
    mem.round(window, |pid, ctx| {
        let y = *ctx.read(0); // concurrent read: fine under CREW
        let cand = *ctx.read(2 + pid); // private candidate
        let prev = if pid == 0 {
            i64::MIN
        } else {
            *ctx.read(2 + pid - 1)
        };
        let hit = (prev < y && y <= cand) as i64;
        ctx.write(2 + window + pid, hit);
    });
    assert!(mem.violations().is_empty(), "{:?}", mem.violations());
    // Exactly one processor's test succeeded.
    let hits: i64 = mem.cells()[2 + window..].iter().sum();
    assert_eq!(hits, 1);

    // The same round under EREW must be flagged (cell 0 read by all).
    let mut cells = vec![0i64; 2 + 2 * window];
    cells[0] = 17;
    let mut erew = TracedMem::new(cells, Model::Erew);
    erew.round(window, |pid, ctx| {
        let _ = *ctx.read(0);
        ctx.write(2 + window + pid, 0);
    });
    assert!(
        !erew.violations().is_empty(),
        "EREW must flag the shared read"
    );
}

/// Indirect retrieval's empty-range link-out uses concurrent writes: legal
/// under CRCW (arbitrary winner), flagged under CREW.
#[test]
fn crcw_linkout_round() {
    let ranges = 16usize;
    // Every non-empty range writes itself as "first non-empty" into cell 0;
    // the arbitrary-CRCW winner is enough for building the linked list.
    let run = |model: Model| {
        let mut mem = TracedMem::new(vec![-1i64; 1 + ranges], model);
        mem.round(ranges, |pid, ctx| {
            let nonempty = pid % 3 != 0;
            if nonempty {
                ctx.write(0, pid as i64);
            }
            ctx.write(1 + pid, nonempty as i64);
        });
        (mem.violations().len(), mem.cells()[0])
    };
    let (crcw_violations, winner) = run(Model::Crcw);
    assert_eq!(crcw_violations, 0);
    assert!(winner >= 0, "some non-empty range won the write");
    let (crew_violations, _) = run(Model::Crew);
    assert!(crew_violations > 0, "CREW must flag the concurrent write");
}

/// Regression for the last-pid-wins masking bug: a cell read by pids
/// {0, 1} and then written by pid 1 is a read/write conflict against the
/// *other* reader — the old bookkeeping kept only the most recent pid per
/// cell, so pid 1's own read overwrote pid 0's and the conflict vanished.
#[test]
fn read_write_conflict_is_not_masked_by_a_later_same_pid_read() {
    let mut mem = TracedMem::new(vec![0i64; 4], Model::Crew);
    mem.round(2, |pid, ctx| {
        let v = *ctx.read(0); // pid 0 reads, then pid 1 reads (masking setup)
        if pid == 1 {
            ctx.write(0, v + 1); // pid 1 also writes the cell
        }
    });
    let v = mem.violations();
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].kind, ConflictKind::ReadWrite);
    assert!(
        v[0].pairs.contains(&(0, 1)),
        "the foreign reader/writer pair must be reported: {:?}",
        v[0].pairs
    );
}

/// All conflicting pairs on a cell are reported, not just one: four EREW
/// readers of one cell yield all C(4,2) = 6 pairs.
#[test]
fn every_conflicting_pair_is_reported() {
    let mut mem = TracedMem::new(vec![7i64; 2], Model::Erew);
    mem.round(4, |_pid, ctx| {
        let _ = *ctx.read(0);
    });
    let v = mem.violations();
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].kind, ConflictKind::ConcurrentRead);
    assert_eq!(
        v[0].pairs,
        vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
    );
}

/// Scheduled kills fire at the start of the named round: the dead pid's
/// body never runs, so a conflict it would have caused cannot appear, and
/// surviving pids keep the discipline clean.
#[test]
fn scheduled_kill_prevents_the_dead_pid_conflict() {
    let run = |kill: bool| {
        let mut mem = TracedMem::new(vec![0i64; 4], Model::Erew);
        if kill {
            mem.schedule_kill(1, 1);
        }
        for _ in 0..2 {
            // Round body: pids 0 and 1 both read cell 0 — an EREW conflict
            // unless one of them is dead.
            mem.round(2, |pid, ctx| {
                let v = *ctx.read(0);
                ctx.write(2 + pid, v);
            });
        }
        mem.violations().len()
    };
    assert_eq!(run(false), 2, "both rounds conflict while pid 1 lives");
    assert_eq!(
        run(true),
        1,
        "after the round-1 kill only round 0 conflicts"
    );
}
