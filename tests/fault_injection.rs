//! Failure injection: deliberately corrupt structure internals and verify
//! that (a) the invariant checkers detect the corruption, and (b) where a
//! runtime guard exists (the Lemma 3 window-coverage check), searches
//! remain exact by falling back.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::invariants;
use fc_catalog::search::search_path_naive;
use fc_catalog::CascadedTree;
use fc_coop::explicit::coop_search_explicit;
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::{Model, Pram};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A bridge pushed past its true target breaks Property 1 or 3 and must be
/// reported by the checker.
#[test]
fn corrupted_bridge_is_detected() {
    let mut rng = SmallRng::seed_from_u64(2001);
    let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
    let mut fc = CascadedTree::build_bidir(tree, 4);
    assert!(invariants::validate(&invariants::check_all(&fc)).is_ok());

    // Find an internal node with a reasonably long bridge vector and yank
    // one bridge far ahead.
    let victim = fc
        .tree()
        .ids()
        .find(|&id| !fc.tree().children(id).is_empty() && fc.aug(id).bridges[0].len() > 8)
        .expect("some internal node");
    let child = fc.tree().children(victim)[0];
    let child_len = fc.keys(child).len() as u32;
    {
        let aug = fc.aug_mut_for_fault_injection(victim);
        let mid = aug.bridges[0].len() / 2;
        aug.bridges[0][mid] = child_len - 1; // overshoot to the terminal
    }
    let report = invariants::check_all(&fc);
    assert!(
        invariants::validate(&report).is_err(),
        "checker must flag the corrupted bridge: {report:?}"
    );
}

/// A bridge that crosses its neighbour breaks Property 3 specifically.
#[test]
fn crossing_bridges_are_detected_as_non_monotone() {
    let mut rng = SmallRng::seed_from_u64(2003);
    let tree = gen::balanced_binary(6, 3000, SizeDist::Uniform, &mut rng);
    let mut fc = CascadedTree::build_bidir(tree, 4);
    let victim = fc
        .tree()
        .ids()
        .find(|&id| !fc.tree().children(id).is_empty() && fc.aug(id).bridges[0].len() > 8)
        .unwrap();
    {
        let aug = fc.aug_mut_for_fault_injection(victim);
        let mid = aug.bridges[0].len() / 2;
        let earlier = aug.bridges[0][mid - 1];
        aug.bridges[0][mid] = earlier.saturating_sub(1); // cross over
    }
    let report = invariants::check_all(&fc);
    assert!(!report.monotone, "crossing must be reported: {report:?}");
}

/// An understated fan-out constant shrinks the hop windows below what the
/// instance needs; the coverage check must catch every miss and repair it
/// with a binary search, keeping results exact.
#[test]
fn understated_b_is_repaired_by_fallbacks() {
    let mut rng = SmallRng::seed_from_u64(2005);
    // Skewed catalogs make the observed fan-out larger, so claiming b = 1
    // genuinely under-covers on some queries.
    let tree = gen::balanced_binary(10, 60_000, SizeDist::SingleHeavy(0.6), &mut rng);
    let fc = CascadedTree::build_bidir(tree, 4);
    let observed = invariants::check_all(&fc).b_observed;
    let st = CoopStructure::from_cascade_with_b(fc, ParamMode::Auto, 1);
    let mut total_fallbacks = 0usize;
    for _ in 0..200 {
        let leaf = gen::random_leaf(st.tree(), &mut rng);
        let path = st.tree().path_from_root(leaf);
        let y = rng.gen_range(0..(60_000i64 * 16));
        let naive = search_path_naive(st.tree(), &path, y, None);
        let mut pram = Pram::new(1 << 20, Model::Crew);
        let out = coop_search_explicit(&st, &path, y, &mut pram);
        assert_eq!(out.finds, naive.results, "results stay exact under faults");
        total_fallbacks += out.stats.fallbacks;
    }
    if observed > 1 {
        assert!(
            total_fallbacks > 0,
            "windows sized for b = 1 should miss somewhere when observed b = {observed}"
        );
    }
}

/// Corrupting an augmented key ordering is caught by the searches' debug
/// guards; in release the checker still reports the fan-out violation the
/// corruption induces downstream.
#[test]
fn corrupted_key_breaks_fanout_accounting() {
    let mut rng = SmallRng::seed_from_u64(2007);
    let tree = gen::balanced_binary(6, 3000, SizeDist::Uniform, &mut rng);
    let mut fc = CascadedTree::build_bidir(tree, 4);
    let victim = fc
        .tree()
        .ids()
        .find(|&id| fc.tree().children(id).len() == 2 && fc.aug(id).bridges[1].len() > 10)
        .unwrap();
    {
        let aug = fc.aug_mut_for_fault_injection(victim);
        // Zero out a late bridge: everything before it now "crosses".
        let last = aug.bridges[1].len() - 2;
        aug.bridges[1][last] = 0;
    }
    let report = invariants::check_all(&fc);
    assert!(invariants::validate(&report).is_err());
}
