//! Failure injection: deliberately corrupt structure internals and verify
//! that (a) the invariant checkers detect the corruption, and (b) where a
//! runtime guard exists (the Lemma 3 window-coverage check), searches
//! remain exact by falling back.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::invariants;
use fc_catalog::search::search_path_naive;
use fc_catalog::{CascadedTree, NodeId};
use fc_coop::dynamic::{BufferBlame, DynamicCoop};
use fc_coop::explicit::coop_search_explicit;
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::{Model, Pram};
use fc_resilience::{Fault, FaultPlan, FaultSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A bridge pushed past its true target breaks Property 1 or 3 and must be
/// reported by the checker.
#[test]
fn corrupted_bridge_is_detected() {
    let mut rng = SmallRng::seed_from_u64(2001);
    let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
    let mut fc = CascadedTree::build_bidir(tree, 4);
    assert!(invariants::validate(&invariants::check_all(&fc)).is_ok());

    // Find an internal node with a reasonably long bridge vector and yank
    // one bridge far ahead.
    let victim = fc
        .tree()
        .ids()
        .find(|&id| !fc.tree().children(id).is_empty() && fc.aug(id).bridges[0].len() > 8)
        .expect("some internal node");
    let child = fc.tree().children(victim)[0];
    let child_len = fc.keys(child).len() as u32;
    {
        let mut aug = fc.aug_mut_for_fault_injection(victim);
        let mid = aug.bridges[0].len() / 2;
        aug.bridges[0][mid] = child_len - 1; // overshoot to the terminal
    }
    let report = invariants::check_all(&fc);
    assert!(
        invariants::validate(&report).is_err(),
        "checker must flag the corrupted bridge: {report:?}"
    );
}

/// A bridge that crosses its neighbour breaks Property 3 specifically.
#[test]
fn crossing_bridges_are_detected_as_non_monotone() {
    let mut rng = SmallRng::seed_from_u64(2003);
    let tree = gen::balanced_binary(6, 3000, SizeDist::Uniform, &mut rng);
    let mut fc = CascadedTree::build_bidir(tree, 4);
    let victim = fc
        .tree()
        .ids()
        .find(|&id| !fc.tree().children(id).is_empty() && fc.aug(id).bridges[0].len() > 8)
        .unwrap();
    {
        let mut aug = fc.aug_mut_for_fault_injection(victim);
        let mid = aug.bridges[0].len() / 2;
        let earlier = aug.bridges[0][mid - 1];
        aug.bridges[0][mid] = earlier.saturating_sub(1); // cross over
    }
    let report = invariants::check_all(&fc);
    assert!(!report.monotone, "crossing must be reported: {report:?}");
}

/// An understated fan-out constant shrinks the hop windows below what the
/// instance needs; the coverage check must catch every miss and repair it
/// with a binary search, keeping results exact.
#[test]
fn understated_b_is_repaired_by_fallbacks() {
    let mut rng = SmallRng::seed_from_u64(2005);
    // Skewed catalogs make the observed fan-out larger, so claiming b = 1
    // genuinely under-covers on some queries.
    let tree = gen::balanced_binary(10, 60_000, SizeDist::SingleHeavy(0.6), &mut rng);
    let fc = CascadedTree::build_bidir(tree, 4);
    let observed = invariants::check_all(&fc).b_observed;
    let st = CoopStructure::from_cascade_with_b(fc, ParamMode::Auto, 1);
    let mut total_fallbacks = 0usize;
    for _ in 0..200 {
        let leaf = gen::random_leaf(st.tree(), &mut rng);
        let path = st.tree().path_from_root(leaf);
        let y = rng.gen_range(0..(60_000i64 * 16));
        let naive = search_path_naive(st.tree(), &path, y, None);
        let mut pram = Pram::new(1 << 20, Model::Crew);
        let out = coop_search_explicit(&st, &path, y, &mut pram);
        assert_eq!(out.finds, naive.results, "results stay exact under faults");
        total_fallbacks += out.stats.fallbacks;
    }
    if observed > 1 {
        assert!(
            total_fallbacks > 0,
            "windows sized for b = 1 should miss somewhere when observed b = {observed}"
        );
    }
}

/// Corrupting an augmented key ordering is caught by the searches' debug
/// guards; in release the checker still reports the fan-out violation the
/// corruption induces downstream.
#[test]
fn corrupted_key_breaks_fanout_accounting() {
    let mut rng = SmallRng::seed_from_u64(2007);
    let tree = gen::balanced_binary(6, 3000, SizeDist::Uniform, &mut rng);
    let mut fc = CascadedTree::build_bidir(tree, 4);
    let victim = fc
        .tree()
        .ids()
        .find(|&id| fc.tree().children(id).len() == 2 && fc.aug(id).bridges[1].len() > 10)
        .unwrap();
    {
        let mut aug = fc.aug_mut_for_fault_injection(victim);
        // Zero out a late bridge: everything before it now "crosses".
        let last = aug.bridges[1].len() - 2;
        aug.bridges[1][last] = 0;
    }
    let report = invariants::check_all(&fc);
    assert!(invariants::validate(&report).is_err());
}

/// Build a dynamic structure with buffered churn (no auto-rebuild), so
/// every dynamic fault kind has injection sites.
fn churned_dynamic(seed: u64) -> (DynamicCoop<i64>, Pram) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let tree = gen::balanced_binary(6, 2500, SizeDist::Uniform, &mut rng);
    let mut dy = DynamicCoop::new(tree, ParamMode::Auto, 1000.0);
    let mut pram = Pram::new(1 << 10, Model::Crew);
    let node_count = dy.structure().tree().len() as u32;
    for _ in 0..300 {
        let node = NodeId(rng.gen_range(0..node_count));
        if rng.gen_bool(0.7) {
            dy.insert(node, rng.gen_range(5_000_000..6_000_000i64), &mut pram);
        } else {
            let cat = dy.structure().tree().catalog(node);
            if let Some(&k) = cat.first() {
                dy.remove(node, k, &mut pram);
            }
        }
    }
    (dy, pram)
}

/// Every dynamic-path fault kind (insert-buffer smuggle, delete-buffer
/// phantom, counter bump) is detected by the buffer audit, across seeds —
/// the dynamic analogue of the static `every_structural_fault_is_detected`.
#[test]
fn dynamic_buffer_faults_are_detected_by_the_buffer_audit() {
    for seed in 0..8u64 {
        let (mut dy, _) = churned_dynamic(2101);
        assert!(dy.audit_buffers().is_ok(), "clean before injection");
        let spec = FaultSpec::one_of_each_dynamic();
        let plan = FaultPlan::generate_dynamic(&dy, &spec, seed);
        assert_eq!(plan.dynamic_len(), spec.dynamic_total(), "seed {seed}");
        plan.apply_dynamic(&mut dy);
        let blames = dy
            .audit_buffers()
            .expect_err("corrupted buffers must be blamed");
        // Each injected kind leaves its characteristic blame.
        for fault in &plan.faults {
            let found = match *fault {
                Fault::InsBufferCorrupt { node, .. } => blames.iter().any(
                    |b| matches!(b, BufferBlame::InsDuplicatesStatic { node: n } if *n == node),
                ),
                Fault::DelBufferCorrupt { node, .. } => blames.iter().any(|b| {
                    matches!(b, BufferBlame::DelPhantom { node: n } if *n == node)
                        || matches!(b, BufferBlame::InsDelOverlap { node: n } if *n == node)
                }),
                Fault::CounterBump => blames
                    .iter()
                    .any(|b| matches!(b, BufferBlame::CounterMismatch { .. })),
                _ => continue,
            };
            assert!(found, "seed {seed}: {fault:?} left no blame in {blames:?}");
        }
    }
}

/// A combined plan corrupts both layers of a `DynamicCoop`: the static
/// audit flags the structure, the buffer audit flags the buffers, and the
/// *dynamic search* on the corrupted structure is never silently wrong —
/// the buffer corrections are applied over exact static answers, so with
/// the static answer verified (or repaired) the logical answer matches the
/// brute-force logical catalog.
#[test]
fn dynamic_search_after_buffer_repair_matches_logical_catalogs() {
    let (mut dy, mut pram) = churned_dynamic(2103);
    let spec = FaultSpec::one_of_each_dynamic();
    let plan = FaultPlan::generate_dynamic(&dy, &spec, 5);
    plan.apply_dynamic(&mut dy);
    assert!(dy.audit_buffers().is_err());

    // Repair = drop buffer entries that contradict the authoritative
    // static catalogs (what fc-serve's auditor does), then re-audit.
    let statics: Vec<Vec<i64>> = {
        let tree = dy.structure().tree();
        tree.ids().map(|id| tree.catalog(id).to_vec()).collect()
    };
    {
        let (ins, del, changes) = dy.buffers_mut_for_fault_injection();
        let mut buffered = 0usize;
        for ((ins_v, del_v), cat) in ins.iter_mut().zip(del.iter_mut()).zip(&statics) {
            ins_v.retain(|k| cat.binary_search(k).is_err());
            del_v.retain(|k| cat.binary_search(k).is_ok());
            let overlap: Vec<i64> = ins_v.intersection(del_v).copied().collect();
            for k in &overlap {
                del_v.remove(k);
            }
            buffered += ins_v.len() + del_v.len();
        }
        *changes = buffered;
    }
    assert!(dy.audit_buffers().is_ok(), "repair restores the invariants");

    let mut rng = SmallRng::seed_from_u64(2104);
    for _ in 0..50 {
        let leaf = gen::random_leaf(dy.structure().tree(), &mut rng);
        let path = dy.structure().tree().path_from_root(leaf);
        let y = rng.gen_range(-5..6_000_005i64);
        let got = dy.search(&path, y, &mut pram);
        let expect: Vec<Option<i64>> = path
            .iter()
            .map(|&node| dy.logical_catalog(node).into_iter().find(|&k| k >= y))
            .collect();
        assert_eq!(got, expect);
    }
}

/// A rebuild that fires while the insert buffer holds a smuggled
/// statically-present key must not panic or bake a duplicate into the
/// catalogs: the logical catalog is a set, and the post-rebuild self-audit
/// stays clean.
#[test]
fn rebuild_with_corrupted_ins_buffer_stays_sound() {
    let (mut dy, mut pram) = churned_dynamic(2105);
    let plan = FaultPlan::generate_dynamic(
        &dy,
        &FaultSpec {
            ins_buffer_corrupts: 2,
            ..FaultSpec::default()
        },
        11,
    );
    plan.apply_dynamic(&mut dy);
    assert!(dy.audit_buffers().is_err());
    dy.force_rebuild(&mut pram);
    let gs = dy.gen_stats();
    assert_eq!(gs.audit_failures, 0, "rebuild must re-audit clean");
    assert!(dy.audit_buffers().is_ok(), "buffers drained");
    // No duplicate keys anywhere.
    for id in dy.structure().tree().ids() {
        let cat = dy.structure().tree().catalog(id);
        assert!(
            cat.windows(2).all(|w| w[0] < w[1]),
            "node {id:?} not strict"
        );
    }
}
