//! Cluster chaos test (the fc-shard acceptance gate): S=4 shards × R=2
//! replicas under injected corruption, a forced full-replica quarantine,
//! and a routing-table split mid-storm. Invariants asserted throughout:
//!
//! 1. **Zero silently-wrong answers**: every `Ok` leg equals the
//!    sequential oracle *on the generation that served it*, and the merged
//!    answer is the first-`Some` over the legs in ascending shard order.
//! 2. **Every key range stays answerable**: a fully-quarantined replica
//!    fails over to its peer (or serves degraded); `ShardError`s are
//!    allowed mid-storm, wrongness never is — and once the storm settles
//!    and audits repair, probes of every shard range must answer `Ok`.
//! 3. **Routing hot-swap**: the split publishes `version + 1` and queries
//!    keep answering across it.

use fc_catalog::{CatalogKey, NodeId};
use fc_coop::dynamic::UpdateOp;
use fc_coop::CoopStructure;
use fc_resilience::FaultSpec;
use fc_serve::ServeConfig;
use fc_shard::{ShardCluster, ShardConfig, ShardedOk};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn oracle<K: CatalogKey>(st: &CoopStructure<K>, path: &[NodeId], y: K) -> Vec<Option<K>> {
    path.iter()
        .map(|&node| {
            let cat = st.tree().catalog(node);
            cat.get(cat.partition_point(|k| *k < y)).copied()
        })
        .collect()
}

/// Assert invariant 1 on one successful cluster answer.
fn check_ok(ok: &ShardedOk<i64>, y: i64) {
    let mut prev_shard = None;
    let mut merged = vec![None; ok.answers.len()];
    for leg in &ok.legs {
        if let Some(p) = prev_shard {
            assert!(leg.shard > p, "legs must ascend: {:?}", ok.legs);
        }
        prev_shard = Some(leg.shard);
        assert_eq!(
            leg.answers,
            oracle(&leg.gen.st, &leg.path, y),
            "leg on shard {} replica {} (gen {}) diverges from its own \
             generation's oracle — a silently wrong answer",
            leg.shard,
            leg.replica,
            leg.gen.id
        );
        for (slot, ans) in merged.iter_mut().zip(leg.answers.iter()) {
            if slot.is_none() {
                *slot = *ans;
            }
        }
    }
    assert_eq!(
        ok.answers, merged,
        "merged answer must be the first-Some over ascending legs"
    );
}

fn chaos_cfg() -> ShardConfig {
    ShardConfig {
        shards: 4,
        replicas: 2,
        serve: ServeConfig {
            workers: 2,
            queue_cap: 256,
            default_deadline: Duration::from_secs(10),
            audit_interval: Duration::from_millis(40),
            processors: 1 << 8,
            // No degraded fallback: a corrupt/quarantined replica must
            // *error* (typed), so answerability can only come from replica
            // failover — the property this storm is about.
            degraded_reads: false,
            verify_answers: true,
            ..ServeConfig::default()
        },
        batch_threads: 2,
        escalation_legs: 8,
        default_deadline: Duration::from_secs(20),
        ..ShardConfig::default()
    }
}

/// One key strictly inside each shard's range, to probe answerability.
fn shard_probes(cluster: &ShardCluster<i64>) -> Vec<i64> {
    let state = cluster.state();
    (0..state.table.shards())
        .map(|s| {
            let (lo, hi) = state.table.range_of(s);
            match (lo, hi) {
                (Some(&l), Some(&h)) => (l + h) / 2,
                (None, Some(&h)) => h - 1,
                (Some(&l), None) => l + 1,
                (None, None) => 0,
            }
        })
        .collect()
}

#[test]
fn chaos_storm_no_silent_wrongness_and_full_answerability() {
    let mut rng = SmallRng::seed_from_u64(0x000C_1A05);
    let tree =
        fc_catalog::gen::balanced_binary(6, 3000, fc_catalog::gen::SizeDist::Uniform, &mut rng);
    let cluster = ShardCluster::start(&tree, fc_coop::ParamMode::Auto, chaos_cfg());
    assert!(cluster.shards() >= 4, "acceptance: S >= 4");
    let leaves = cluster.leaves();
    let v0 = cluster.table_version();

    let mut ok_count = 0u64;
    let mut err_count = 0u64;
    let mut injected = 0u64;
    let total_ops = 320;
    for op in 0..total_ops {
        // Storm events at fixed points.
        if op == 80 {
            assert!(
                cluster.force_quarantine_replica(2, 0),
                "full-replica quarantine must address a live replica"
            );
        }
        if op == 160 {
            let v1 = cluster.split_shard(1).expect("mid-storm split");
            assert_eq!(v1, v0 + 1, "split publishes version + 1");
            assert_eq!(cluster.shards(), 5);
        }
        match rng.gen_range(0..100) {
            // Single queries: the bread and butter.
            0..=44 => {
                let leaf = leaves[rng.gen_range(0..leaves.len())];
                let y = rng.gen_range(-500..60_000i64);
                match cluster.query_blocking(leaf, y, None) {
                    Ok(ok) => {
                        check_ok(&ok, y);
                        ok_count += 1;
                    }
                    Err(_typed) => err_count += 1,
                }
            }
            // Batched scatter/gather.
            45..=64 => {
                let queries: Vec<(NodeId, i64)> = (0..16)
                    .map(|_| {
                        (
                            leaves[rng.gen_range(0..leaves.len())],
                            rng.gen_range(-500..60_000i64),
                        )
                    })
                    .collect();
                for ((_, y), res) in queries.iter().zip(cluster.query_batch(&queries, None)) {
                    match res {
                        Ok(ok) => {
                            check_ok(&ok, *y);
                            ok_count += 1;
                        }
                        Err(_typed) => err_count += 1,
                    }
                }
            }
            // Update batches, routed by key.
            65..=79 => {
                let leaf = leaves[rng.gen_range(0..leaves.len())];
                let node = *tree.path_from_root(leaf).first().unwrap();
                let ops: Vec<UpdateOp<i64>> = (0..6)
                    .map(|_| {
                        let k = rng.gen_range(0..60_000i64);
                        if rng.gen_bool(0.7) {
                            UpdateOp::Insert(node, k)
                        } else {
                            UpdateOp::Remove(node, k)
                        }
                    })
                    .collect();
                cluster.update_batch(&ops);
            }
            // Fault injection into a random replica.
            80..=92 => {
                let state = cluster.state();
                let shard = rng.gen_range(0..state.table.shards());
                let replica = rng.gen_range(0..2);
                let seed = rng.gen();
                if cluster
                    .inject(shard, replica, &FaultSpec::one_of_each(), seed)
                    .is_some()
                {
                    injected += 1;
                }
            }
            // Kick the auditors.
            _ => cluster.trigger_audit_all(),
        }
    }
    assert!(injected > 0, "the storm must actually inject faults");
    assert!(ok_count > 0, "the storm must actually answer queries");

    // Settle: repair everything. Audits fix the structures but leave
    // breakers half-open (they close only after consecutive successful
    // probe queries), so keep routing settle traffic — the router
    // shadow-probes recovering replicas — until every breaker closes.
    while cluster.audit_blocking_all() > 0 {}
    let leaf = leaves[0];
    for _ in 0..500 {
        let healed = cluster
            .health()
            .iter()
            .flatten()
            .all(|h| h.breaker == fc_serve::BreakerState::Closed);
        if healed {
            break;
        }
        for probe in shard_probes(&cluster) {
            let _ = cluster.query_blocking(leaf, probe, None);
        }
    }
    for (s, probe) in shard_probes(&cluster).iter().enumerate() {
        let ok = cluster
            .query_blocking(leaf, *probe, None)
            .unwrap_or_else(|e| panic!("shard {s} range unanswerable after repair: {e}"));
        check_ok(&ok, *probe);
    }

    let stats = cluster.shutdown();
    assert!(
        stats.failovers > 0,
        "a fully-quarantined replica must have forced failovers: {stats:?}"
    );
    assert_eq!(stats.splits, 1);
    assert!(
        err_count < ok_count,
        "storm errors ({err_count}) should stay below successes ({ok_count})"
    );
}

#[test]
fn concurrent_clients_survive_split_and_quarantine() {
    let mut rng = SmallRng::seed_from_u64(0x000C_1A07);
    let tree =
        fc_catalog::gen::balanced_binary(5, 1500, fc_catalog::gen::SizeDist::LeafHeavy, &mut rng);
    let cluster = ShardCluster::start(&tree, fc_coop::ParamMode::Auto, chaos_cfg());
    let leaves = cluster.leaves();

    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let cluster = &cluster;
            let leaves = &leaves;
            scope.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(0xBEEF + t);
                for _ in 0..40 {
                    let leaf = leaves[rng.gen_range(0..leaves.len())];
                    let y = rng.gen_range(-100..30_000i64);
                    if let Ok(ok) = cluster.query_blocking(leaf, y, None) {
                        check_ok(&ok, y);
                    }
                }
            });
        }
        // Main thread is the chaos monkey: corrupt, quarantine, split.
        cluster.inject(0, 1, &FaultSpec::one_of_each(), 99);
        cluster.force_quarantine_replica(3, 1);
        let v = cluster.split_shard(0);
        assert!(v.is_some(), "split under concurrent load");
    });

    while cluster.audit_blocking_all() > 0 {}
    let leaf = leaves[0];
    for _ in 0..500 {
        let healed = cluster
            .health()
            .iter()
            .flatten()
            .all(|h| h.breaker == fc_serve::BreakerState::Closed);
        if healed {
            break;
        }
        for probe in shard_probes(&cluster) {
            let _ = cluster.query_blocking(leaf, probe, None);
        }
    }
    for probe in shard_probes(&cluster) {
        let ok = cluster.query_blocking(leaf, probe, None).expect("probe");
        check_ok(&ok, probe);
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.splits, 1);
}
