//! End-to-end resilience properties: every injected corruption is caught
//! with non-empty localized blame, the inject → detect → repair round trip
//! restores `invariants::validate`, checked searches never return silently
//! wrong answers on tampered structures, and processor deaths mid-search
//! degrade gracefully.

use fc_catalog::gen::{self, SizeDist};
use fc_catalog::invariants;
use fc_catalog::search::search_path_naive;
use fc_coop::explicit::{coop_search_explicit, coop_search_explicit_checked};
use fc_coop::general::binarize;
use fc_coop::{CoopStructure, ParamMode};
use fc_pram::{Model, Pram};
use fc_resilience::{audit, repair, Fault, FaultPlan, FaultSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The shape sweep every property runs over: balanced binary trees under
/// all catalog-size distributions, plus binarized d-ary and skewed shapes.
fn shapes(rng: &mut SmallRng) -> Vec<(&'static str, CoopStructure<i64>)> {
    let mut out = Vec::new();
    for (name, dist) in [
        ("uniform", SizeDist::Uniform),
        ("single-heavy", SizeDist::SingleHeavy(0.5)),
        ("root-heavy", SizeDist::RootHeavy),
        ("leaf-heavy", SizeDist::LeafHeavy),
    ] {
        let tree = gen::balanced_binary(7, 4000, dist, rng);
        out.push((name, CoopStructure::preprocess(tree, ParamMode::Auto)));
    }
    let dary = gen::dary(3, 4, 3000, rng);
    let bin = binarize(&dary);
    out.push((
        "binarized-3ary",
        CoopStructure::preprocess(bin.tree, ParamMode::Auto),
    ));
    let cat = gen::caterpillar(24, 2000, rng);
    out.push((
        "caterpillar",
        CoopStructure::preprocess(cat, ParamMode::Auto),
    ));
    out
}

/// Property: every structural fault the injector places is detected by the
/// audit with non-empty blame — no false negatives, across shapes and seeds.
#[test]
fn every_injected_corruption_is_blamed() {
    let mut rng = SmallRng::seed_from_u64(3001);
    for (name, st) in shapes(&mut rng) {
        assert!(audit(&st).is_clean(), "{name}: clean structure flagged");
        let spec = FaultSpec::one_of_each();
        for seed in 0..10u64 {
            let plan = FaultPlan::generate(&st, &spec, seed);
            assert!(
                plan.structural_len() > 0,
                "{name} seed {seed}: injector found no feasible site"
            );
            let mut tampered = st.clone();
            plan.apply(&mut tampered);
            let report = audit(&tampered);
            assert!(
                !report.findings.is_empty(),
                "{name} seed {seed}: plan {plan:?} escaped the audit"
            );
        }
    }
}

/// Property: inject → detect → repair → re-validate. After repair the audit
/// is clean and the cascade invariants validate, on every shape.
#[test]
fn corruption_round_trip_repairs_clean() {
    let mut rng = SmallRng::seed_from_u64(3007);
    for (name, st) in shapes(&mut rng) {
        for seed in 0..5u64 {
            let mut tampered = st.clone();
            let plan = FaultPlan::generate(&tampered, &FaultSpec::one_of_each(), 100 + seed);
            plan.apply(&mut tampered);
            let report = audit(&tampered);
            assert!(!report.is_clean(), "{name} seed {seed}");
            let stats = repair(&mut tampered, &report);
            assert!(
                audit(&tampered).is_clean(),
                "{name} seed {seed}: repair left the audit dirty ({stats:?})"
            );
            invariants::validate(&invariants::check_all(tampered.cascade())).unwrap_or_else(|e| {
                panic!("{name} seed {seed}: invariants dirty after repair: {e}")
            });
            assert!(
                stats.repair_ops <= stats.full_rebuild_ops,
                "{name} seed {seed}: repair cost {} exceeded rebuild {}",
                stats.repair_ops,
                stats.full_rebuild_ops
            );
        }
    }
}

/// Property: single-fault repairs are localized — strictly cheaper than the
/// full rebuild, without falling back.
#[test]
fn single_fault_repair_is_localized() {
    let mut rng = SmallRng::seed_from_u64(3011);
    let tree = gen::balanced_binary(8, 8000, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let kinds = [
        FaultSpec {
            key_swaps: 1,
            ..FaultSpec::default()
        },
        FaultSpec {
            supremum_clobbers: 1,
            ..FaultSpec::default()
        },
        FaultSpec {
            bridge_perturbs: 1,
            ..FaultSpec::default()
        },
        FaultSpec {
            native_succ_perturbs: 1,
            ..FaultSpec::default()
        },
        FaultSpec {
            skeleton_perturbs: 1,
            ..FaultSpec::default()
        },
    ];
    for (ki, spec) in kinds.iter().enumerate() {
        for seed in 0..5u64 {
            let mut tampered = st.clone();
            let plan = FaultPlan::generate(&tampered, spec, 200 + seed);
            plan.apply(&mut tampered);
            let report = audit(&tampered);
            let stats = repair(&mut tampered, &report);
            assert!(
                !stats.fell_back_to_full_rebuild,
                "kind {ki} seed {seed}: localized repair fell back"
            );
            assert!(
                stats.repair_ops < stats.full_rebuild_ops,
                "kind {ki} seed {seed}: repair {} not cheaper than rebuild {}",
                stats.repair_ops,
                stats.full_rebuild_ops
            );
            assert!(audit(&tampered).is_clean(), "kind {ki} seed {seed}");
        }
    }
}

/// Property: on a bridge-tampered structure, the checked explicit search
/// either returns the exact answer or an `Err` with localized blame — never
/// a silently wrong answer.
#[test]
fn checked_search_never_answers_wrong_on_tampered_structure() {
    let mut rng = SmallRng::seed_from_u64(3019);
    let tree = gen::balanced_binary(8, 8000, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let n = 8000i64;
    let mut flagged = 0usize;
    for seed in 0..10u64 {
        let mut tampered = st.clone();
        let plan = FaultPlan::generate(
            &tampered,
            &FaultSpec {
                bridge_perturbs: 12,
                ..FaultSpec::default()
            },
            300 + seed,
        );
        plan.apply(&mut tampered);
        for _ in 0..40 {
            let leaf = gen::random_leaf(tampered.tree(), &mut rng);
            let path = tampered.tree().path_from_root(leaf);
            let y = rng.gen_range(0..n * 16);
            let mut pram = Pram::new(1 << 16, Model::Crew);
            match coop_search_explicit_checked(&tampered, &path, y, &mut pram) {
                Ok(out) => {
                    let truth = search_path_naive(tampered.tree(), &path, y, None);
                    assert_eq!(
                        out.finds, truth.results,
                        "seed {seed}: checked search answered wrong instead of Err"
                    );
                }
                Err(_) => flagged += 1,
            }
        }
    }
    assert!(flagged > 0, "no query ever crossed a tampered bridge");
}

/// Property: killing processors mid-search yields the exact answer, and the
/// step count stays within 2x of a fresh run provisioned at the survivor
/// count (the degraded-mode guarantee).
#[test]
fn mid_search_kills_degrade_gracefully() {
    let mut rng = SmallRng::seed_from_u64(3023);
    let tree = gen::balanced_binary(10, 1 << 15, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let p0 = 1usize << 16;
    let (mut degraded_total, mut fresh_total) = (0u64, 0u64);
    for _ in 0..25 {
        let leaf = gen::random_leaf(st.tree(), &mut rng);
        let path = st.tree().path_from_root(leaf);
        let y = rng.gen_range(0..(1i64 << 19));

        let mut pram = Pram::new(p0, Model::Crew);
        let plan = FaultPlan {
            seed: 0,
            faults: vec![Fault::KillProcessors {
                at_round: 2,
                count: p0 / 2,
            }],
        };
        plan.arm(&mut pram);
        let out = coop_search_explicit(&st, &path, y, &mut pram);
        assert_eq!(pram.processors(), p0 / 2, "kill did not fire");

        let truth = search_path_naive(st.tree(), &path, y, None);
        assert_eq!(out.finds, truth.results, "degraded search answered wrong");

        let mut fresh = Pram::new(p0 / 2, Model::Crew);
        let fout = coop_search_explicit(&st, &path, y, &mut fresh);
        assert_eq!(fout.finds, truth.results);

        degraded_total += pram.steps();
        fresh_total += fresh.steps();
    }
    assert!(
        degraded_total <= 2 * fresh_total,
        "degraded steps {degraded_total} exceed 2x fresh-at-p' {fresh_total}"
    );
}

/// Property: killing everyone makes the checked search report
/// `NoProcessors` instead of dividing by zero or spinning.
#[test]
fn total_processor_loss_is_an_error_not_a_wrong_answer() {
    let mut rng = SmallRng::seed_from_u64(3027);
    let tree = gen::balanced_binary(7, 4000, SizeDist::Uniform, &mut rng);
    let st = CoopStructure::preprocess(tree, ParamMode::Auto);
    let leaf = gen::random_leaf(st.tree(), &mut rng);
    let path = st.tree().path_from_root(leaf);
    let mut pram = Pram::new(8, Model::Crew);
    pram.kill(8);
    let res = coop_search_explicit_checked(&st, &path, 123, &mut pram);
    assert!(res.is_err(), "search on zero processors must fail loudly");
}
